"""The three striping policies of the paper's Section 3.2 example.

The workload: write ``D`` data blocks in parallel across ``N`` mirror
pairs (RAID-10).  The three scenarios, in order of increasingly realistic
performance assumptions:

1. :class:`UniformStriping` -- the *fail-stop illusion*: each pair gets
   ``D / N`` blocks.  If one pair writes at ``b < B``, finish time tracks
   the slow pair and perceived throughput collapses to ``N * b``.
2. :class:`ProportionalStriping` -- performance faults assumed *static*:
   gauge each pair once "at installation" and stripe proportionally to
   the measured ratios.  Under a purely static skew, throughput rises to
   ``(N - 1) * B + b``; but "if any disk does not perform as expected
   over time, performance again tracks the slow disk."
3. :class:`AdaptiveStriping` -- general performance faults: continually
   gauge and write "blocks across mirror-pairs in proportion to their
   current rates", implemented as pull-based assignment.  The cost the
   paper highlights is bookkeeping: "the controller must record where
   each block is written", so the result carries the per-block map (the
   A4 ablation measures its size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faults.model import ComponentStopped
from ..sim.engine import Process, Simulator
from ..sim.resources import Store
from .raid import Raid1Pair

__all__ = [
    "StripingResult",
    "StripingPolicy",
    "UniformStriping",
    "ProportionalStriping",
    "AdaptiveStriping",
]


@dataclass
class StripingResult:
    """Outcome of one D-block parallel write under a striping policy."""

    policy: str
    n_blocks: int
    block_size_mb: float
    started_at: float
    finished_at: float
    blocks_per_pair: List[int]
    #: block -> (pair_index, lba); populated only by policies that must
    #: keep per-block bookkeeping (the adaptive scenario).
    block_map: Dict[int, tuple] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock (virtual) seconds for the whole write."""
        return self.finished_at - self.started_at

    @property
    def throughput_mb_s(self) -> float:
        """Perceived write throughput in MB/s."""
        if self.duration <= 0:
            return float("inf")
        return self.n_blocks * self.block_size_mb / self.duration

    @property
    def bookkeeping_entries(self) -> int:
        """Size of the location map the controller had to record."""
        return len(self.block_map)


class StripingPolicy:
    """Base: writes ``n_blocks`` across mirror pairs, returns a result."""

    name = "base"

    def run(
        self,
        sim: Simulator,
        pairs: Sequence[Raid1Pair],
        n_blocks: int,
        block_value: Optional[int] = None,
    ) -> Process:
        """Start the parallel write; the process returns a StripingResult."""
        if not pairs:
            raise ValueError("need at least one mirror pair")
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be > 0, got {n_blocks}")
        return sim.process(self._go(sim, list(pairs), n_blocks, block_value))

    def _go(self, sim, pairs, n_blocks, block_value):
        raise NotImplementedError
        yield  # pragma: no cover

    @staticmethod
    def _block_size_mb(pairs: Sequence[Raid1Pair]) -> float:
        return pairs[0].primary.params.block_size_mb

    @staticmethod
    def _write_share(sim, pair: Raid1Pair, count: int, value) -> Process:
        """Sequentially write ``count`` blocks to one pair at lba 0.."""

        def go():
            for lba in range(count):
                yield pair.write(lba, 1, value=value)

        return sim.process(go())


class UniformStriping(StripingPolicy):
    """Scenario 1: fail-stop assumptions, equal shares for every pair."""

    name = "uniform"

    def _go(self, sim, pairs, n_blocks, block_value):
        start = sim.now
        n = len(pairs)
        base, extra = divmod(n_blocks, n)
        shares = [base + (1 if i < extra else 0) for i in range(n)]
        writers = [
            self._write_share(sim, pair, count, block_value)
            for pair, count in zip(pairs, shares)
            if count > 0
        ]
        yield sim.all_of(writers)
        return StripingResult(
            policy=self.name,
            n_blocks=n_blocks,
            block_size_mb=self._block_size_mb(pairs),
            started_at=start,
            finished_at=sim.now,
            blocks_per_pair=shares,
        )


class ProportionalStriping(StripingPolicy):
    """Scenario 2: gauge once at installation, stripe by the ratios.

    ``gauge_rates`` may be passed explicitly (e.g. from a probe run); by
    default the policy reads each pair's *current* effective streaming
    rate, which models gauging at installation time -- before any
    post-installation rate change.
    """

    name = "proportional"

    def __init__(self, gauge_rates: Optional[Sequence[float]] = None):
        self.gauge_rates = list(gauge_rates) if gauge_rates is not None else None

    @staticmethod
    def gauge(pair: Raid1Pair) -> float:
        """A pair's observable streaming write rate right now (MB/s)."""
        live = pair.live_disks
        if not live:
            return 0.0
        return min(d.sequential_bandwidth() * d.effective_rate for d in live)

    @staticmethod
    def partition(n_blocks: int, rates: Sequence[float]) -> List[int]:
        """Largest-remainder apportionment of blocks to rates."""
        total = sum(rates)
        if total <= 0:
            raise ValueError("no pair has positive rate")
        ideal = [n_blocks * r / total for r in rates]
        shares = [int(x) for x in ideal]
        remainders = sorted(
            range(len(rates)), key=lambda i: ideal[i] - shares[i], reverse=True
        )
        for i in remainders[: n_blocks - sum(shares)]:
            shares[i] += 1
        return shares

    def _go(self, sim, pairs, n_blocks, block_value):
        start = sim.now
        rates = self.gauge_rates or [self.gauge(p) for p in pairs]
        if len(rates) != len(pairs):
            raise ValueError(f"got {len(rates)} gauge rates for {len(pairs)} pairs")
        shares = self.partition(n_blocks, rates)
        writers = [
            self._write_share(sim, pair, count, block_value)
            for pair, count in zip(pairs, shares)
            if count > 0
        ]
        yield sim.all_of(writers)
        return StripingResult(
            policy=self.name,
            n_blocks=n_blocks,
            block_size_mb=self._block_size_mb(pairs),
            started_at=start,
            finished_at=sim.now,
            blocks_per_pair=shares,
        )


class AdaptiveStriping(StripingPolicy):
    """Scenario 3: pull-based assignment tracks *current* rates.

    Every pair runs a worker that pulls the next unwritten block from a
    shared queue; fast pairs naturally absorb more blocks, and a pair
    that stalls mid-run simply stops pulling.  The price is the per-block
    location map the controller must maintain.

    ``inflight_per_pair`` controls how many blocks a worker claims ahead
    of completion; 1 is maximally adaptive (at most one block stranded on
    a stalling pair).
    """

    name = "adaptive"

    def __init__(self, inflight_per_pair: int = 1):
        if inflight_per_pair < 1:
            raise ValueError(f"inflight_per_pair must be >= 1, got {inflight_per_pair}")
        self.inflight_per_pair = inflight_per_pair

    def _go(self, sim, pairs, n_blocks, block_value):
        start = sim.now
        queue = Store(sim)
        for block in range(n_blocks):
            queue.put(block)
        block_map: Dict[int, tuple] = {}
        counts = [0] * len(pairs)
        next_lba = [0] * len(pairs)  # shared across a pair's workers
        n_workers = len(pairs) * self.inflight_per_pair

        def finish_check():
            # Once every block is placed, release the workers still waiting
            # on the queue with one sentinel each.
            if len(block_map) == n_blocks:
                for __ in range(n_workers):
                    queue.put(None)

        def worker(index: int, pair: Raid1Pair):
            while True:
                block = yield queue.get()
                if block is None:
                    return
                lba = next_lba[index]
                next_lba[index] += 1
                try:
                    yield pair.write(lba, 1, value=block_value)
                except ComponentStopped:
                    # Pair lost both members mid-write: hand the block back
                    # for a surviving pair and retire this worker.
                    queue.put(block)
                    return
                block_map[block] = (index, lba)
                counts[index] += 1
                finish_check()

        workers = [
            sim.process(worker(i, pair))
            for i, pair in enumerate(pairs)
            for __ in range(self.inflight_per_pair)
        ]
        yield sim.all_of(workers)
        if len(block_map) < n_blocks:
            raise ComponentStopped("raid10")  # every pair failed with work left
        return StripingResult(
            policy=self.name,
            n_blocks=n_blocks,
            block_size_mb=self._block_size_mb(pairs),
            started_at=start,
            finished_at=sim.now,
            blocks_per_pair=counts,
            block_map=block_map,
        )
