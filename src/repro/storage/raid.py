"""RAID levels over simulated disks.

Implements the arrays the paper's examples are built on:

* :class:`Raid0` -- striping, no redundancy.  The Section 1 claim: "if
  performance of a single disk is consistently lower than the rest, the
  performance of the entire storage system tracks that of the single,
  slow disk" (E2).
* :class:`Raid1Pair` -- a mirrored pair.  Writes go to both members
  (completion is the *max*, so "the rate of each mirror is determined by
  the rate of its slowest disk", Section 3.2); reads are served by the
  less-loaded live member.
* :class:`Raid10` -- mirrored pairs striped RAID-0 style: exactly the
  Section 3.2 configuration of ``2 * N`` disks.
* :class:`Raid5` -- rotating parity with read-modify-write small writes,
  full-stripe writes, degraded reads and reconstruction.

All data paths move real (modelled) content -- integers combined with XOR
for parity -- so the test suite can check *data* invariants (mirrors
identical, parity consistent, reconstruction exact), not just timing.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..core.component import CompositeComponent
from ..faults.model import ComponentStopped
from ..faults.spec import PerformanceSpec
from ..sim.engine import Event, Process, Simulator
from .disk import Disk

__all__ = ["Raid0", "Raid1Pair", "Raid10", "Raid5"]


def _member_spec_sum(disks: Sequence[Disk]) -> PerformanceSpec:
    """Aggregate spec for a striped array: sum of member nominal rates."""
    return PerformanceSpec(sum(d.spec.nominal_rate for d in disks))


def _xor(*values: Any) -> int:
    """XOR fold treating None (never-written) as zero."""
    out = 0
    for v in values:
        out ^= 0 if v is None else int(v)
    return out


class Raid0(CompositeComponent):
    """Block-striped array with no redundancy."""

    substrate = "storage"

    def __init__(self, sim: Simulator, disks: Sequence[Disk], stripe_unit: int = 1,
                 name: str = ""):
        if len(disks) < 2:
            raise ValueError("striping needs >= 2 disks")
        if stripe_unit < 1:
            raise ValueError(f"stripe_unit must be >= 1, got {stripe_unit}")
        self.sim = sim
        self.disks: List[Disk] = list(disks)
        self.stripe_unit = stripe_unit
        self._init_component(
            sim,
            name or f"raid0({','.join(d.name for d in self.disks)})",
            self.disks,
            _member_spec_sum(self.disks),
        )

    @property
    def width(self) -> int:
        """Number of member disks."""
        return len(self.disks)

    def locate(self, block: int) -> Tuple[int, int]:
        """Map logical ``block`` to ``(disk_index, lba)``."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        chunk, offset = divmod(block, self.stripe_unit)
        row, disk_index = divmod(chunk, self.width)
        return disk_index, row * self.stripe_unit + offset

    def write(self, block: int, value: Any = None) -> Event:
        """Write one logical block."""
        disk_index, lba = self.locate(block)
        return self.disks[disk_index].write(lba, 1, value=value)

    def read(self, block: int) -> Process:
        """Read one logical block; the process returns its value."""
        disk_index, lba = self.locate(block)

        def go():
            yield self.disks[disk_index].read(lba, 1)
            return self.disks[disk_index].peek(lba)

        return self.sim.process(go())

    def write_all(self, blocks: Sequence[int], value: Any = None) -> Event:
        """Write many logical blocks in parallel; fires when all are done."""
        return self.sim.all_of([self.write(b, value) for b in blocks])


class Raid1Pair(CompositeComponent):
    """A mirrored pair of disks."""

    substrate = "storage"

    def __init__(self, sim: Simulator, primary: Disk, secondary: Disk, name: str = ""):
        self.sim = sim
        self.primary = primary
        self.secondary = secondary
        self._read_toggle = 0
        # The mirrored-write rate is gated by the slowest member, so the
        # pair's spec is the min over members, not the sum.
        self._init_component(
            sim,
            name or f"pair({primary.name},{secondary.name})",
            [],
            PerformanceSpec(min(d.spec.nominal_rate for d in (primary, secondary))),
        )

    def _component_children(self) -> List[Disk]:
        # Live view: reconstruction swaps a spare in for a dead member.
        return [self.primary, self.secondary]

    def delivered_rate(self) -> float:
        """Mirrored-write delivery: the slowest live member's rate."""
        return self.effective_rate

    @property
    def disks(self) -> Tuple[Disk, Disk]:
        """Both members."""
        return (self.primary, self.secondary)

    @property
    def live_disks(self) -> List[Disk]:
        """Members that have not fail-stopped."""
        return [d for d in self.disks if not d.stopped]

    @property
    def failed(self) -> bool:
        """True when both members have fail-stopped (data loss)."""
        return not self.live_disks

    @property
    def effective_rate(self) -> float:
        """The pair's current write rate factor: min over live members.

        Section 3.2: "the rate of each mirror is determined by the rate of
        its slowest disk."  With one member dead, the survivor's rate rules.
        """
        live = self.live_disks
        if not live:
            return 0.0
        return min(d.effective_rate for d in live)

    def nominal_service_time(self, lba: int, nblocks: int = 1) -> float:
        """Fault-free mirrored-write time (max over members)."""
        return max(d.service_time(lba, nblocks, sequential_hint=True) for d in self.disks)

    def write(self, lba: int, nblocks: int = 1, value: Any = None) -> Process:
        """Mirrored write: completes when every live member has written."""

        def go():
            live = self.live_disks
            if not live:
                raise ComponentStopped(self.name)
            events = [d.write(lba, nblocks, value=value) for d in live]
            try:
                yield self.sim.all_of(events)
            except ComponentStopped:
                # A member died mid-write; the data is safe iff one member
                # committed.  Re-check liveness and committed state.
                survivors = self.live_disks
                if not survivors:
                    raise
                committed = [d for d in survivors if d.peek(lba) == value]
                if not committed:
                    yield self.sim.all_of(
                        [d.write(lba, nblocks, value=value) for d in survivors]
                    )
            return None

        return self.sim.process(go())

    def read(self, lba: int, nblocks: int = 1) -> Process:
        """Read from the less-loaded live member; returns the value."""

        def go():
            live = self.live_disks
            if not live:
                raise ComponentStopped(self.name)
            if len(live) == 1:
                disk = live[0]
            else:
                q0, q1 = live[0].queue_length, live[1].queue_length
                if q0 != q1:
                    disk = live[0] if q0 < q1 else live[1]
                else:
                    self._read_toggle ^= 1
                    disk = live[self._read_toggle]
            yield disk.read(lba, nblocks)
            return disk.peek(lba)

        return self.sim.process(go())

    def consistent_at(self, lba: int) -> bool:
        """True when both live members agree on the content at ``lba``."""
        live = self.live_disks
        if len(live) < 2:
            return True
        return live[0].peek(lba) == live[1].peek(lba)


class Raid10(CompositeComponent):
    """Mirrored pairs, striped RAID-0 style (the Section 3.2 layout)."""

    substrate = "storage"

    def __init__(self, sim: Simulator, pairs: Sequence[Raid1Pair], name: str = ""):
        if len(pairs) < 2:
            raise ValueError("RAID-10 needs >= 2 mirror pairs")
        self.sim = sim
        self.pairs: List[Raid1Pair] = list(pairs)
        self._init_component(
            sim,
            name or f"raid10({','.join(p.name for p in self.pairs)})",
            self.pairs,
            PerformanceSpec(sum(p.spec.nominal_rate for p in self.pairs)),
        )

    @classmethod
    def from_disks(cls, sim: Simulator, disks: Sequence[Disk]) -> "Raid10":
        """Build pairs from an even-length disk list (adjacent disks pair)."""
        if len(disks) < 4 or len(disks) % 2:
            raise ValueError("RAID-10 needs an even number (>= 4) of disks")
        pairs = [
            Raid1Pair(sim, disks[i], disks[i + 1]) for i in range(0, len(disks), 2)
        ]
        return cls(sim, pairs)

    @property
    def width(self) -> int:
        """Number of mirror pairs (the striping width)."""
        return len(self.pairs)

    def locate(self, block: int) -> Tuple[int, int]:
        """Map logical ``block`` to ``(pair_index, lba)``."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        row, pair_index = divmod(block, self.width)
        return pair_index, row

    def write(self, block: int, value: Any = None) -> Process:
        """Write one logical block to its mirror pair."""
        pair_index, lba = self.locate(block)
        return self.pairs[pair_index].write(lba, 1, value=value)

    def read(self, block: int) -> Process:
        """Read one logical block; the process returns its value."""
        pair_index, lba = self.locate(block)
        return self.pairs[pair_index].read(lba, 1)

    @property
    def failed(self) -> bool:
        """True when any pair has lost both members."""
        return any(pair.failed for pair in self.pairs)


class Raid5(CompositeComponent):
    """Left-asymmetric rotating-parity array.

    Logical blocks are grouped into stripes of ``width - 1`` data blocks
    plus one parity block; the parity disk rotates per stripe.  Small
    writes use read-modify-write (4 I/Os); :meth:`write_stripe` is the
    full-stripe fast path (no reads).
    """

    substrate = "storage"

    def __init__(self, sim: Simulator, disks: Sequence[Disk], name: str = ""):
        if len(disks) < 3:
            raise ValueError("RAID-5 needs >= 3 disks")
        self.sim = sim
        self.disks: List[Disk] = list(disks)
        self._init_component(
            sim,
            name or f"raid5({','.join(d.name for d in self.disks)})",
            self.disks,
            _member_spec_sum(self.disks),
        )

    @property
    def width(self) -> int:
        """Number of member disks."""
        return len(self.disks)

    @property
    def data_width(self) -> int:
        """Data blocks per stripe."""
        return self.width - 1

    def parity_disk_of(self, stripe: int) -> int:
        """The member holding parity for ``stripe``."""
        return (self.width - 1) - (stripe % self.width)

    def locate(self, block: int) -> Tuple[int, int, int]:
        """Map logical ``block`` to ``(stripe, disk_index, lba)``."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        stripe, within = divmod(block, self.data_width)
        parity = self.parity_disk_of(stripe)
        data_members = [i for i in range(self.width) if i != parity]
        return stripe, data_members[within], stripe

    def write(self, block: int, value: Any = None) -> Process:
        """Small write: read-modify-write of data and parity."""
        stripe, disk_index, lba = self.locate(block)
        parity_index = self.parity_disk_of(stripe)
        data_disk = self.disks[disk_index]
        parity_disk = self.disks[parity_index]

        def go():
            # Phase 1: read old data and old parity in parallel.
            yield self.sim.all_of([data_disk.read(lba, 1), parity_disk.read(lba, 1)])
            old_data = data_disk.peek(lba)
            old_parity = parity_disk.peek(lba)
            new_parity = _xor(old_parity, old_data, value)
            # Phase 2: write new data and new parity in parallel.
            yield self.sim.all_of(
                [
                    data_disk.write(lba, 1, value=value),
                    parity_disk.write(lba, 1, value=new_parity),
                ]
            )
            return None

        return self.sim.process(go())

    def write_stripe(self, stripe: int, values: Sequence[Any]) -> Process:
        """Full-stripe write: parity computed in memory, no reads."""
        if len(values) != self.data_width:
            raise ValueError(f"need {self.data_width} values, got {len(values)}")
        parity_index = self.parity_disk_of(stripe)
        data_members = [i for i in range(self.width) if i != parity_index]
        parity = _xor(*values)

        def go():
            writes = [
                self.disks[m].write(stripe, 1, value=v)
                for m, v in zip(data_members, values)
            ]
            writes.append(self.disks[parity_index].write(stripe, 1, value=parity))
            yield self.sim.all_of(writes)
            return None

        return self.sim.process(go())

    def read(self, block: int) -> Process:
        """Read one block, reconstructing from peers if its disk is dead."""
        stripe, disk_index, lba = self.locate(block)
        disk = self.disks[disk_index]

        def go():
            if not disk.stopped:
                yield disk.read(lba, 1)
                return disk.peek(lba)
            # Degraded read: XOR of every surviving member at this lba.
            survivors = [d for d in self.disks if not d.stopped and d is not disk]
            if len(survivors) < self.width - 1:
                raise ComponentStopped(disk.name)  # two failures: unrecoverable
            yield self.sim.all_of([d.read(lba, 1) for d in survivors])
            return _xor(*(d.peek(lba) for d in survivors))

        return self.sim.process(go())

    def stripe_consistent(self, stripe: int) -> bool:
        """True when the stripe's parity equals the XOR of its data."""
        parity_index = self.parity_disk_of(stripe)
        data = [
            self.disks[i].peek(stripe) for i in range(self.width) if i != parity_index
        ]
        parity = self.disks[parity_index].peek(stripe)
        return _xor(*data) == _xor(parity)

    def reconstruct_block(self, stripe: int, failed_index: int) -> Process:
        """Recompute a dead member's block at ``stripe`` from survivors."""
        survivors = [
            d for i, d in enumerate(self.disks) if i != failed_index and not d.stopped
        ]
        if len(survivors) < self.width - 1:
            raise ComponentStopped(self.disks[failed_index].name)

        def go():
            yield self.sim.all_of([d.read(stripe, 1) for d in survivors])
            return _xor(*(d.peek(stripe) for d in survivors))

        return self.sim.process(go())
