"""I/O workload generators.

Covers the access patterns the paper's evidence relies on:

* sequential scans (the Hawk bandwidth experiment, E3);
* aged/fragmented file layouts (Section 2.2.1 "File Layout": sequential
  read performance across aged file systems varies by up to a factor of
  two, E13);
* open-loop request streams for availability measurements (E14).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..faults.distributions import Distribution
from ..sim.engine import Process, Simulator
from ..sim.metrics import AvailabilityMeter
from .disk import Disk

__all__ = [
    "ScanResult",
    "sequential_scan",
    "file_layout",
    "read_layout",
    "poisson_requests",
]


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a timed scan."""

    nblocks: int
    duration: float
    bandwidth_mb_s: float


def sequential_scan(
    sim: Simulator, disk: Disk, start: int = 0, nblocks: int = 1000, chunk: int = 64
) -> Process:
    """Stream ``nblocks`` from ``start`` in ``chunk``-block requests.

    The process returns a :class:`ScanResult`; bandwidth reflects zone
    rates, remap penalties and any active performance fault.
    """
    if nblocks <= 0 or chunk <= 0:
        raise ValueError("nblocks and chunk must be > 0")

    def go():
        begin = sim.now
        at = start
        remaining = nblocks
        while remaining > 0:
            span = min(chunk, remaining)
            yield disk.read(at, span)
            at += span
            remaining -= span
        duration = sim.now - begin
        mb = nblocks * disk.params.block_size_mb
        return ScanResult(nblocks, duration, mb / duration if duration > 0 else float("inf"))

    return sim.process(go())


def file_layout(
    n_blocks: int,
    fragmentation: float,
    capacity_blocks: int,
    rng: random.Random,
    start: int = 0,
) -> List[int]:
    """Block addresses of one file on an aged file system.

    With probability ``1 - fragmentation`` the next block is contiguous
    with the previous one; otherwise it jumps to a random free-ish spot.
    ``fragmentation = 0`` is a freshly created file system (purely
    sequential layout); higher values model aging.
    """
    if n_blocks <= 0:
        raise ValueError(f"n_blocks must be > 0, got {n_blocks}")
    if not 0.0 <= fragmentation <= 1.0:
        raise ValueError(f"fragmentation must be in [0, 1], got {fragmentation}")
    if capacity_blocks < n_blocks:
        raise ValueError("file larger than disk")
    layout = [start]
    for __ in range(n_blocks - 1):
        if rng.random() < fragmentation:
            layout.append(rng.randrange(capacity_blocks))
        else:
            layout.append(min(layout[-1] + 1, capacity_blocks - 1))
    return layout


def read_layout(sim: Simulator, disk: Disk, layout: Sequence[int]) -> Process:
    """Read a file's blocks in layout order; returns a :class:`ScanResult`.

    Contiguous runs are coalesced into single requests, as a file system
    read-ahead would issue them.
    """
    if not layout:
        raise ValueError("layout must be non-empty")

    def go():
        begin = sim.now
        run_start = layout[0]
        run_len = 1
        for lba in list(layout[1:]) + [None]:
            if lba is not None and lba == run_start + run_len:
                run_len += 1
                continue
            yield disk.read(run_start, run_len)
            if lba is not None:
                run_start, run_len = lba, 1
        duration = sim.now - begin
        mb = len(layout) * disk.params.block_size_mb
        return ScanResult(len(layout), duration, mb / duration if duration > 0 else float("inf"))

    return sim.process(go())


def poisson_requests(
    sim: Simulator,
    issue: Callable[[], object],
    interarrival: Distribution,
    count: int,
    rng: random.Random,
    meter: Optional[AvailabilityMeter] = None,
    deadline: Optional[float] = None,
) -> Process:
    """Open-loop request stream for availability measurement.

    ``issue()`` must return a simulation event for one request (e.g.
    ``lambda: disk.read(lba, 1)``).  Requests are *open loop*: arrivals
    keep coming while earlier requests are still outstanding, which is
    what makes slow components hurt availability rather than just
    stretching the run.  Each completion is recorded into ``meter`` (a
    failed or never-finished request records as unserved).  The process
    returns the meter.
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    meter = meter or AvailabilityMeter(slo=1.0)
    outstanding = []
    closed = [False]  # set at the deadline; late completions then don't record

    def one_request():
        issued = sim.now
        try:
            yield issue()
        except Exception:
            if not closed[0]:
                meter.record(None)
            return
        if not closed[0]:
            meter.record(sim.now - issued)

    def go():
        for __ in range(count):
            outstanding.append(sim.process(one_request()))
            yield sim.timeout(interarrival.sample(rng))
        pending = sim.all_of(outstanding)
        if deadline is None:
            yield pending
        else:
            yield sim.any_of([pending, sim.timeout(deadline)])
            closed[0] = True
            unfinished = sum(1 for p in outstanding if not p.triggered)
            for __ in range(unfinished):
                meter.record(None)
        return meter

    return sim.process(go())
