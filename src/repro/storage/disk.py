"""The disk model.

A :class:`Disk` is a :class:`~repro.faults.component.DegradableServer`
whose work unit is *nominal service seconds*: for each request the disk
computes how long it would take on a healthy device (positioning +
zone-rate transfer + remap penalties) and submits that as work to a
server running at rate 1.0.  Every fault in the injector library then
composes naturally -- a 0.5 slowdown makes all service take twice as
long, a stall freezes the head mid-transfer, and fail-stop kills queued
requests detectably.

The model is calibrated against the paper's 5400-RPM Seagate Hawk era
(~5.5 MB/s sequential) by default but everything is parameterised.

A content store (block -> value) rides along so RAID layers above can be
tested for *data* correctness (mirror consistency, parity reconstruction),
not just timing.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..faults.component import DegradableServer
from ..faults.spec import PerformanceSpec
from ..sim.engine import Event, Simulator
from .badblocks import BadBlockMap
from .geometry import ZoneGeometry, uniform_geometry

__all__ = ["DiskParams", "Disk", "HAWK_PARAMS"]


@dataclass(frozen=True)
class DiskParams:
    """Mechanical parameters of a disk model.

    ``avg_seek`` and the rotational latency (half a revolution at ``rpm``)
    are charged on every non-sequential access; ``block_size_mb`` converts
    block counts to megabytes; ``remap_penalty`` is the extra positioning
    cost per remapped block touched.
    """

    rpm: float = 5400.0
    avg_seek: float = 0.011  # seconds
    block_size_mb: float = 0.5
    remap_penalty: Optional[float] = None  # defaults to seek + rotation

    def __post_init__(self):
        if self.rpm <= 0:
            raise ValueError(f"rpm must be > 0, got {self.rpm}")
        if self.avg_seek < 0:
            raise ValueError(f"avg_seek must be >= 0, got {self.avg_seek}")
        if self.block_size_mb <= 0:
            raise ValueError(f"block_size_mb must be > 0, got {self.block_size_mb}")
        if self.remap_penalty is not None and self.remap_penalty < 0:
            raise ValueError(f"remap_penalty must be >= 0, got {self.remap_penalty}")

    @property
    def rotational_latency(self) -> float:
        """Average rotational delay: half a revolution, in seconds."""
        return 0.5 * 60.0 / self.rpm

    @property
    def positioning_time(self) -> float:
        """Average seek plus rotational latency."""
        return self.avg_seek + self.rotational_latency

    @property
    def effective_remap_penalty(self) -> float:
        """Extra time charged per remapped block."""
        if self.remap_penalty is not None:
            return self.remap_penalty
        return self.positioning_time


#: Parameters matching the paper's 5400-RPM Seagate Hawk measurements.
HAWK_PARAMS = DiskParams(rpm=5400.0, avg_seek=0.011, block_size_mb=0.5)


class Disk(DegradableServer):
    """A single disk drive with zones, bad blocks and the fault surface.

    ``read``/``write`` return events that fire with
    :class:`~repro.sim.resources.JobStats` when the I/O completes.
    Requests are served FIFO; sequential requests (starting where the
    previous request ended) skip positioning, which is what makes
    fragmented layouts slower (E13).
    """

    substrate = "storage"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        geometry: Optional[ZoneGeometry] = None,
        params: DiskParams = HAWK_PARAMS,
        badblocks: Optional[BadBlockMap] = None,
        spec: Optional[PerformanceSpec] = None,
    ):
        self.geometry = geometry or uniform_geometry(1_000_000, 5.5)
        # Work unit = nominal service seconds, served at 1.0 per second.
        # The default spec lives in the same units (delivered service
        # seconds per second), matching the completion telemetry; MB/s
        # views stay available as nominal/effective_bandwidth.
        super().__init__(sim, name, nominal_rate=1.0, spec=spec)
        self.params = params
        self.badblocks = badblocks or BadBlockMap()
        self._head: Optional[int] = None  # lba following the last request
        self._content: Dict[int, Any] = {}
        self.reads = 0
        self.writes = 0

    # -- service-time model ----------------------------------------------------

    def service_time(self, lba: int, nblocks: int, sequential_hint: bool = False) -> float:
        """Nominal (fault-free) service time for a request.

        Exposed so striping policies can gauge disks analytically and so
        tests can pin the model.

        The transfer charge walks the geometry's precomputed boundary and
        rate arrays directly: one bisect locates the first zone, then each
        touched zone costs O(1).  The per-span arithmetic and accumulation
        order are identical to :meth:`service_time_reference`, so results
        are bit-identical to the historical loop (the equivalence property
        tests compare with ``==``, not ``approx``).
        """
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        geometry = self.geometry
        end = lba + nblocks
        if not (0 <= lba and end <= geometry.capacity_blocks):
            raise ValueError(
                f"request [{lba}, {end}) outside disk of "
                f"{geometry.capacity_blocks} blocks"
            )
        sequential = sequential_hint or (self._head is not None and lba == self._head)
        time = 0.0 if sequential else self.params.positioning_time
        block_size_mb = self.params.block_size_mb
        bounds = geometry._bounds
        rates = geometry._rates
        i = bisect_right(bounds, lba)
        at = lba
        while True:
            zone_end = bounds[i]
            if end <= zone_end:
                time += (end - at) * block_size_mb / rates[i]
                break
            time += (zone_end - at) * block_size_mb / rates[i]
            at = zone_end
            i += 1
        time += self.badblocks.remapped_in_range(lba, nblocks) * self.params.effective_remap_penalty
        return time

    def service_time_reference(self, lba: int, nblocks: int, sequential_hint: bool = False) -> float:
        """The original per-zone interpreted loop, kept as the executable
        spec: the equivalence property tests assert ``service_time`` matches
        it bit for bit, and the models benchmark times it as the baseline.
        """
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        if not (0 <= lba and lba + nblocks <= self.geometry.capacity_blocks):
            raise ValueError(
                f"request [{lba}, {lba + nblocks}) outside disk of "
                f"{self.geometry.capacity_blocks} blocks"
            )
        sequential = sequential_hint or (self._head is not None and lba == self._head)
        time = 0.0 if sequential else self.params.positioning_time
        # Transfer charged per-zone so requests spanning zones are exact.
        remaining = nblocks
        at = lba
        while remaining > 0:
            zone = self.geometry.zone_of(at)
            # Blocks left in this zone from `at`.
            zone_end = self._zone_end_reference(at)
            span = min(remaining, zone_end - at)
            time += span * self.params.block_size_mb / zone.rate
            at += span
            remaining -= span
        time += self.badblocks.remapped_in_range_reference(lba, nblocks) \
            * self.params.effective_remap_penalty
        return time

    def _zone_end(self, lba: int) -> int:
        """First block past the zone containing ``lba``."""
        return self.geometry.span_end(lba)

    def _zone_end_reference(self, lba: int) -> int:
        """Linear-scan forebear of :meth:`ZoneGeometry.span_end` (spec for
        the property tests and the benchmark baseline)."""
        bound = 0
        for zone in self.geometry.zones:
            bound += zone.blocks
            if lba < bound:
                return bound
        raise ValueError(f"lba {lba} out of range")  # pragma: no cover

    # -- I/O surface ---------------------------------------------------------------

    def read(self, lba: int, nblocks: int = 1) -> Event:
        """Issue a read; event fires with JobStats at completion."""
        work = self.service_time(lba, nblocks)
        self._head = lba + nblocks
        self.reads += 1
        return self.submit(work, tag=("read", lba, nblocks))

    def write(self, lba: int, nblocks: int = 1, value: Any = None) -> Event:
        """Issue a write; stores ``value`` in the content model.

        The value is recorded at completion (not submission) so that a
        fail-stop mid-queue leaves the content untouched, matching what a
        real halted disk would have committed.
        """
        work = self.service_time(lba, nblocks)
        self._head = lba + nblocks
        self.writes += 1
        event = self.submit(work, tag=("write", lba, nblocks))
        if value is not None:
            def commit(ev: Event) -> None:
                if ev._ok:
                    for i in range(nblocks):
                        self._content[lba + i] = value
            event.callbacks.append(commit)
        return event

    def peek(self, lba: int) -> Any:
        """Content-model read (no timing): last committed value at ``lba``."""
        return self._content.get(lba)

    def clone_content_from(self, source: "Disk", lba: int, nblocks: int) -> None:
        """Copy another disk's committed content (rebuild data path).

        Timing must be charged separately via :meth:`read`/:meth:`write`;
        this only moves the modelled bytes.
        """
        if nblocks < 0:
            raise ValueError(f"nblocks must be >= 0, got {nblocks}")
        for block in range(lba, lba + nblocks):
            value = source.peek(block)
            if value is not None:
                self._content[block] = value

    # -- bandwidth views -------------------------------------------------------------

    @property
    def nominal_bandwidth(self) -> float:
        """Headline MB/s: the fastest zone at nominal rate."""
        return self.geometry.max_rate

    @property
    def effective_bandwidth(self) -> float:
        """Headline MB/s scaled by the active fault factors."""
        return self.geometry.max_rate * self.effective_rate

    def sequential_bandwidth(self, lba: int = 0, nblocks: int = 1000) -> float:
        """Nominal streaming MB/s over ``[lba, lba+nblocks)`` incl. remaps."""
        time = self.service_time(lba, nblocks, sequential_hint=True)
        return nblocks * self.params.block_size_mb / time

    def __repr__(self) -> str:
        return (
            f"<Disk {self.name} {self.nominal_bandwidth:.2f} MB/s nominal, "
            f"state={self.state.value}>"
        )
