"""Storage substrate: disks, buses, RAID and the Section 3.2 policies.

* :mod:`repro.storage.geometry` -- multi-zone disk geometry.
* :mod:`repro.storage.badblocks` -- transparent bad-block remapping.
* :mod:`repro.storage.disk` -- the disk model (a degradable server).
* :mod:`repro.storage.bus` -- SCSI chains with correlated reset stalls.
* :mod:`repro.storage.raid` -- RAID-0/1/10/5 with a real content model.
* :mod:`repro.storage.striping` -- uniform / proportional / adaptive
  striping (the paper's three scenarios).
* :mod:`repro.storage.workload` -- scans, aged layouts, request streams.
"""

from .badblocks import BadBlockMap
from .bus import TALAGALA_MIX, BusError, ErrorMix, ScsiBus
from .disk import HAWK_PARAMS, Disk, DiskParams
from .geometry import Zone, ZoneGeometry, uniform_geometry, zoned_geometry
from .lfs import LfsConfig, LfsStats, LogFs
from .raid import Raid0, Raid1Pair, Raid5, Raid10
from .reconstruct import RebuildResult, Reconstructor
from .striping import (
    AdaptiveStriping,
    ProportionalStriping,
    StripingPolicy,
    StripingResult,
    UniformStriping,
)
from .workload import (
    ScanResult,
    file_layout,
    poisson_requests,
    read_layout,
    sequential_scan,
)

__all__ = [
    "Zone",
    "ZoneGeometry",
    "uniform_geometry",
    "zoned_geometry",
    "BadBlockMap",
    "Disk",
    "DiskParams",
    "HAWK_PARAMS",
    "ScsiBus",
    "ErrorMix",
    "BusError",
    "TALAGALA_MIX",
    "Raid0",
    "Raid1Pair",
    "Raid10",
    "Raid5",
    "Reconstructor",
    "RebuildResult",
    "LogFs",
    "LfsConfig",
    "LfsStats",
    "StripingPolicy",
    "StripingResult",
    "UniformStriping",
    "ProportionalStriping",
    "AdaptiveStriping",
    "ScanResult",
    "sequential_scan",
    "file_layout",
    "read_layout",
    "poisson_requests",
]
