"""SCSI bus with timeout/parity errors and chain-wide resets.

Section 2.1.2 ("Timeouts"), from Talagala & Patterson's 400-disk farm
study: "SCSI timeouts and parity errors make up 49% of all errors; when
network errors are removed, this figure rises to 87% of all error
instances" -- roughly two per day -- and "these errors often lead to SCSI
bus resets, affecting the performance of all disks on the degraded SCSI
chain."

:class:`ScsiBus` groups disks into a chain and runs an error process:
errors arrive randomly, are classified by a configurable mix, and the
SCSI-class errors (timeout/parity) stall *every* disk on the chain for
the reset duration.  This is the canonical *correlated* performance
fault: per-disk redundancy does not help when the whole chain stutters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.component import CompositeComponent
from ..faults.distributions import Distribution, Exponential, Fixed
from ..faults.spec import PerformanceSpec
from ..sim.engine import Simulator
from ..sim.trace import Tracer
from .disk import Disk

__all__ = ["ErrorMix", "BusError", "ScsiBus", "TALAGALA_MIX"]


@dataclass(frozen=True)
class ErrorMix:
    """Relative weights of error classes on a storage farm.

    Only ``timeout`` and ``parity`` errors trigger bus resets; the others
    exist so experiments can reproduce the study's *accounting* claims
    (what fraction of all errors are SCSI-class).
    """

    timeout: float = 0.30
    parity: float = 0.19
    network: float = 0.44
    other: float = 0.07

    def __post_init__(self):
        weights = (self.timeout, self.parity, self.network, self.other)
        if any(w < 0 for w in weights):
            raise ValueError("error weights must be >= 0")
        if sum(weights) <= 0:
            raise ValueError("error weights must not all be zero")

    def classify(self, rng: random.Random) -> str:
        """Draw an error class according to the weights."""
        classes = ("timeout", "parity", "network", "other")
        weights = (self.timeout, self.parity, self.network, self.other)
        return rng.choices(classes, weights=weights, k=1)[0]

    @property
    def scsi_fraction(self) -> float:
        """Fraction of all errors that are SCSI timeouts/parity."""
        total = self.timeout + self.parity + self.network + self.other
        return (self.timeout + self.parity) / total

    @property
    def scsi_fraction_excluding_network(self) -> float:
        """Same, with network errors removed from the denominator."""
        total = self.timeout + self.parity + self.other
        return (self.timeout + self.parity) / total


#: Mix calibrated to Talagala & Patterson: SCSI-class errors are 49% of all
#: errors and 87% once network errors are excluded.
TALAGALA_MIX = ErrorMix(timeout=0.30, parity=0.19, network=0.44, other=0.07)


@dataclass(frozen=True)
class BusError:
    """One logged error instance on the chain."""

    time: float
    kind: str
    reset: bool
    duration: float = 0.0


class ScsiBus(CompositeComponent):
    """A SCSI chain: disks plus a shared error/reset process.

    Parameters
    ----------
    error_interarrival:
        Distribution of gaps between error instances on this chain.  The
        study observed ~2/day per farm; per-chain rates scale with chain
        count.
    reset_duration:
        Distribution of the stall imposed on every disk during a reset.
    mix:
        Error classification weights (default: the study's observed mix).
    """

    substrate = "storage"

    def __init__(
        self,
        sim: Simulator,
        disks: Sequence[Disk],
        error_interarrival: Distribution = Exponential(43_200.0),  # 2/day in seconds
        reset_duration: Distribution = Fixed(2.0),
        mix: ErrorMix = TALAGALA_MIX,
        rng: Optional[random.Random] = None,
        tracer: Optional[Tracer] = None,
        name: str = "",
    ):
        if not disks:
            raise ValueError("a chain needs at least one disk")
        self.sim = sim
        self.disks: List[Disk] = list(disks)
        self._init_component(
            sim,
            name or f"scsi({','.join(d.name for d in self.disks)})",
            self.disks,
            PerformanceSpec(sum(d.spec.nominal_rate for d in self.disks)),
        )
        self.error_interarrival = error_interarrival
        self.reset_duration = reset_duration
        self.mix = mix
        self.rng = rng or random.Random(0)
        self.tracer = tracer
        self.errors: List[BusError] = []
        self._source = f"scsi-reset@{id(self):x}"
        self._running = False

    def start(self) -> None:
        """Begin the error process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._error_loop())

    def _error_loop(self):
        while self._running:
            yield self.sim.timeout(self.error_interarrival.sample(self.rng))
            if not self._running:
                return
            kind = self.mix.classify(self.rng)
            resets = kind in ("timeout", "parity")
            duration = self.reset_duration.sample(self.rng) if resets else 0.0
            self.errors.append(BusError(self.sim.now, kind, resets, duration))
            if self.tracer is not None:
                self.tracer.emit("scsi.error", kind, {"reset": resets})
            if not resets:
                continue
            for disk in self.disks:
                if not disk.stopped:
                    disk.set_slowdown(self._source, 0.0)
            yield self.sim.timeout(duration)
            for disk in self.disks:
                disk.clear_slowdown(self._source)

    def stop(self, cause: Optional[str] = None) -> None:
        """Without ``cause``: stop generating new errors (an in-progress
        reset completes), the historical control-surface call.  With a
        ``cause`` (the Component fail-stop path, e.g. a ``FailStopAt``
        injector attached by name): also fail-stop every disk on the chain.
        """
        self._running = False
        if cause is not None:
            CompositeComponent.stop(self, cause)

    # -- accounting views ------------------------------------------------------

    def error_counts(self) -> Dict[str, int]:
        """Errors seen so far, by class."""
        counts: Dict[str, int] = {}
        for err in self.errors:
            counts[err.kind] = counts.get(err.kind, 0) + 1
        return counts

    def scsi_error_fraction(self, exclude_network: bool = False) -> float:
        """Observed fraction of errors that are SCSI timeouts/parity."""
        relevant = [e for e in self.errors if not (exclude_network and e.kind == "network")]
        if not relevant:
            return 0.0
        scsi = sum(1 for e in relevant if e.kind in ("timeout", "parity"))
        return scsi / len(relevant)

    @property
    def reset_count(self) -> int:
        """Number of chain resets so far."""
        return sum(1 for e in self.errors if e.reset)
