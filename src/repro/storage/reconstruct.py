"""Hot-spare reconstruction (Section 3.2, scenario 1).

"If an absolute failure occurs on a single disk, it is detected and
operation continues, perhaps with a reconstruction initiated to a hot
spare."

Reconstruction is interesting under the fail-stutter lens because the
rebuild itself is a *performance fault*: while the survivor is copied to
the spare, foreground requests on that pair contend with rebuild I/O.
:class:`Reconstructor` performs a block-by-block rebuild at a
configurable throttle; the A6 ablation sweeps the throttle to expose the
rebuild-time vs. foreground-slowdown trade-off (and the reliability
exposure window during which the pair has no redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Process, Simulator
from .disk import Disk
from .raid import Raid1Pair

__all__ = ["RebuildResult", "Reconstructor"]


@dataclass
class RebuildResult:
    """Outcome of one hot-spare rebuild."""

    blocks: int
    started_at: float
    finished_at: float
    blocks_copied: int

    @property
    def duration(self) -> float:
        """Exposure window: time the pair ran without redundancy."""
        return self.finished_at - self.started_at


class Reconstructor:
    """Rebuilds a failed mirror member onto a hot spare.

    Parameters
    ----------
    rebuild_chunk:
        Blocks copied per rebuild I/O.
    throttle:
        Idle time inserted between rebuild I/Os, as a multiple of the
        chunk's nominal service time.  ``0.0`` rebuilds flat out
        (fastest exposure window, worst foreground interference);
        higher values favour foreground traffic.
    """

    def __init__(self, sim: Simulator, rebuild_chunk: int = 64, throttle: float = 0.0):
        if rebuild_chunk < 1:
            raise ValueError(f"rebuild_chunk must be >= 1, got {rebuild_chunk}")
        if throttle < 0:
            raise ValueError(f"throttle must be >= 0, got {throttle}")
        self.sim = sim
        self.rebuild_chunk = rebuild_chunk
        self.throttle = throttle

    def rebuild(self, pair: Raid1Pair, spare: Disk, blocks: int) -> Process:
        """Copy ``blocks`` from the pair's survivor onto ``spare``.

        On completion the spare replaces the dead member inside ``pair``.
        Data moves block-by-block through the normal I/O path, so the
        rebuild contends with foreground requests.  The process returns
        a :class:`RebuildResult`.
        """
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        live = pair.live_disks
        if len(live) != 1:
            raise ValueError(
                f"rebuild needs exactly one live member, pair has {len(live)}"
            )
        if spare.stopped:
            raise ValueError("spare has fail-stopped")
        survivor = live[0]

        def go():
            start = self.sim.now
            copied = 0
            at = 0
            while copied < blocks:
                span = min(self.rebuild_chunk, blocks - copied)
                yield survivor.read(at, span)
                write = spare.write(at, span)
                spare.clone_content_from(survivor, at, span)
                yield write
                copied += span
                at += span
                if self.throttle > 0:
                    pause = self.throttle * span * (
                        survivor.params.block_size_mb / survivor.nominal_bandwidth
                    )
                    yield self.sim.timeout(pause)
            # Swap the spare in for the dead member.
            if pair.primary.stopped:
                pair.primary = spare
            else:
                pair.secondary = spare
            return RebuildResult(
                blocks=blocks,
                started_at=start,
                finished_at=self.sim.now,
                blocks_copied=copied,
            )

        return self.sim.process(go())
