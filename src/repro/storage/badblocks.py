"""Bad-block remapping.

Section 2.1.2 ("Fault Masking"): a Seagate Hawk with three times the
block faults of its peers delivered 5.0 MB/s instead of 5.5 MB/s on
sequential reads, because "SCSI bad-block remappings, transparent to both
users and file systems, were the culprit."

A :class:`BadBlockMap` records which logical blocks have been remapped to
spare sectors.  Accessing a remapped block costs an extra positioning
penalty (the head must detour to the spare area and back), which is how a
handful of remaps silently shaves percent-level bandwidth off an
otherwise healthy disk.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from typing import Iterable, List, Optional, Set

__all__ = ["BadBlockMap"]


class BadBlockMap:
    """The set of remapped logical blocks on one disk.

    Membership is a set (O(1) :meth:`is_remapped`); a parallel sorted
    list makes :meth:`remapped_in_range` two bisects instead of a scan
    over the range or the whole map.
    """

    def __init__(self, remapped: Optional[Iterable[int]] = None):
        self._remapped: Set[int] = set(remapped or ())
        if any(lba < 0 for lba in self._remapped):
            raise ValueError("block addresses must be >= 0")
        self._sorted: List[int] = sorted(self._remapped)

    @classmethod
    def random(
        cls,
        capacity_blocks: int,
        fault_rate: float,
        rng: random.Random,
    ) -> "BadBlockMap":
        """Remap each block independently with probability ``fault_rate``.

        The Hawk experiment's "three times the block faults" is expressed
        by giving one disk 3x the ``fault_rate`` of its peers.
        """
        if capacity_blocks <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity_blocks}")
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if fault_rate == 0.0:
            return cls()
        # Draw the count then sample distinct addresses: much faster than a
        # per-block Bernoulli loop for realistic (tiny) fault rates.
        count = sum(1 for __ in range(capacity_blocks) if rng.random() < fault_rate) \
            if capacity_blocks <= 4096 else cls._binomial(capacity_blocks, fault_rate, rng)
        count = min(count, capacity_blocks)
        return cls(rng.sample(range(capacity_blocks), count))

    @staticmethod
    def _binomial(n: int, p: float, rng: random.Random) -> int:
        """Normal approximation to Binomial(n, p) for large n."""
        mean = n * p
        std = (n * p * (1 - p)) ** 0.5
        return max(0, min(n, round(rng.gauss(mean, std))))

    def is_remapped(self, lba: int) -> bool:
        """True if ``lba`` was remapped to a spare sector."""
        return lba in self._remapped

    def remap(self, lba: int) -> None:
        """Mark ``lba`` remapped (grown defect)."""
        if lba < 0:
            raise ValueError(f"lba must be >= 0, got {lba}")
        if lba not in self._remapped:
            self._remapped.add(lba)
            insort(self._sorted, lba)

    def remapped_in_range(self, lba: int, nblocks: int) -> int:
        """How many blocks of ``[lba, lba + nblocks)`` are remapped.

        Two bisects over the sorted remap list: O(log remaps) whatever
        the request size or map density.
        """
        if nblocks <= 0:
            return 0
        return bisect_left(self._sorted, lba + nblocks) - bisect_left(self._sorted, lba)

    def remapped_in_range_reference(self, lba: int, nblocks: int) -> int:
        """The original scan-the-smaller-side count, kept as the
        executable spec for the property tests and benchmark baseline."""
        if nblocks <= 0:
            return 0
        if len(self._remapped) < nblocks:
            return sum(1 for b in self._remapped if lba <= b < lba + nblocks)
        return sum(1 for b in range(lba, lba + nblocks) if b in self._remapped)

    def __len__(self) -> int:
        return len(self._remapped)

    def __repr__(self) -> str:
        return f"BadBlockMap({len(self._remapped)} remapped)"
