"""A log-structured file system with a segment cleaner (Section 2.2.1).

The paper lists "cleaners in log-structured file systems" among the
background operations that make components performance-faulty from the
outside: foreground writes stream at disk speed until free segments run
low, then the cleaner steals bandwidth to compact live data, and write
latency stutters -- no hardware misbehaving anywhere.

:class:`LogFs` models the segment economics: appends consume free
segments; overwrites make old blocks dead; the cleaner picks fragmented
segments (lowest live ratio first), copies the live blocks forward and
frees the rest.  Cleaning I/O goes through the same disk as foreground
writes, so the interference emerges rather than being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..sim.engine import Process, Simulator
from .disk import Disk

__all__ = ["LfsConfig", "LfsStats", "LogFs"]


@dataclass(frozen=True)
class LfsConfig:
    """Segment geometry and cleaning policy."""

    segment_blocks: int = 64
    n_segments: int = 64
    #: Cleaning starts when free segments drop to this count...
    clean_low_water: int = 8
    #: ...and stops once this many are free again.
    clean_high_water: int = 16

    def __post_init__(self):
        if self.segment_blocks < 1 or self.n_segments < 2:
            raise ValueError("segment geometry too small")
        if not 1 <= self.clean_low_water < self.clean_high_water <= self.n_segments:
            raise ValueError("need 1 <= low water < high water <= n_segments")


@dataclass
class LfsStats:
    """Operation counters."""

    appends: int = 0
    cleanings: int = 0
    blocks_copied: int = 0
    segments_freed: int = 0


class LogFs:
    """An append-only log over one disk, with a background cleaner."""

    substrate = "storage"

    def __init__(self, sim: Simulator, disk: Disk, config: LfsConfig = LfsConfig()):
        needed = config.segment_blocks * config.n_segments
        if disk.geometry.capacity_blocks < needed:
            raise ValueError(
                f"disk of {disk.geometry.capacity_blocks} blocks too small for "
                f"{needed}-block log"
            )
        self.sim = sim
        self.disk = disk
        self.config = config
        #: Segment index -> set of live file-block ids stored there.
        self._live: Dict[int, Set[int]] = {i: set() for i in range(config.n_segments)}
        self._free: List[int] = list(range(1, config.n_segments))
        self._head_segment = 0
        self._head_offset = 0
        #: file block id -> (segment, offset).
        self._where: Dict[int, tuple] = {}
        self.stats = LfsStats()
        self._cleaning = False

    # -- views ---------------------------------------------------------------

    @property
    def free_segments(self) -> int:
        """Segments fully available for new appends."""
        return len(self._free)

    def live_blocks(self) -> int:
        """File blocks currently reachable."""
        return len(self._where)

    def utilization_of(self, segment: int) -> float:
        """Live fraction of one segment."""
        return len(self._live[segment]) / self.config.segment_blocks

    # -- write path ------------------------------------------------------------

    def write(self, block_id: int) -> Process:
        """Append (or overwrite) one file block; returns its new location.

        An overwrite kills the block's previous copy, creating the dead
        space the cleaner later reclaims.
        """
        if block_id < 0:
            raise ValueError(f"block_id must be >= 0, got {block_id}")

        def go():
            if self.free_segments <= self.config.clean_low_water:
                self._start_cleaner()
            if self._head_offset >= self.config.segment_blocks:
                yield from self._roll_segment()
            segment, offset = self._head_segment, self._head_offset
            self._head_offset += 1
            lba = segment * self.config.segment_blocks + offset
            yield self.disk.write(lba, 1, value=block_id)
            old = self._where.get(block_id)
            if old is not None:
                self._live[old[0]].discard(block_id)
            self._where[block_id] = (segment, offset)
            self._live[segment].add(block_id)
            self.stats.appends += 1
            return (segment, offset)

        return self.sim.process(go())

    def _roll_segment(self):
        """Advance the log head to a fresh segment (may have to wait)."""
        while not self._free:
            self._start_cleaner()
            yield self.sim.timeout(0.01)  # wait for the cleaner to free space
        self._head_segment = self._free.pop(0)
        self._head_offset = 0

    # -- cleaner -------------------------------------------------------------------

    def _start_cleaner(self) -> None:
        if self._cleaning:
            return
        self._cleaning = True
        self.sim.process(self._clean())

    def _clean(self):
        """Segment-granularity cleaning: big reads and writes.

        Working at segment granularity is LFS's bargain -- and exactly
        what makes the cleaner visible to foreground writers: each
        victim costs one segment-sized read plus batch writes of its
        live blocks, queued FIFO ahead of whoever arrives next.
        """
        self.stats.cleanings += 1
        seg_blocks = self.config.segment_blocks
        try:
            while self.free_segments < self.config.clean_high_water:
                victim = self._pick_victim()
                if victim is None:
                    return  # nothing reclaimable
                live = sorted(self._live[victim])
                if live:
                    # One big read of the victim segment.
                    yield self.disk.read(victim * seg_blocks, seg_blocks)
                remaining = [
                    b for b in live if self._where.get(b, (None,))[0] == victim
                ]
                while remaining:
                    if self._head_offset >= seg_blocks:
                        if not self._free:
                            return  # out of space even for cleaning
                        self._head_segment = self._free.pop(0)
                        self._head_offset = 0
                    span = min(len(remaining), seg_blocks - self._head_offset)
                    batch = remaining[:span]
                    remaining = remaining[span:]
                    new_segment, start_offset = self._head_segment, self._head_offset
                    self._head_offset += span
                    new_lba = new_segment * seg_blocks + start_offset
                    yield self.disk.write(new_lba, span)
                    for i, block_id in enumerate(batch):
                        self._live[victim].discard(block_id)
                        self._where[block_id] = (new_segment, start_offset + i)
                        self._live[new_segment].add(block_id)
                    self.stats.blocks_copied += span
                self._live[victim] = set()
                self._free.append(victim)
                self.stats.segments_freed += 1
        finally:
            self._cleaning = False

    def _pick_victim(self) -> Optional[int]:
        """Lowest-utilization full segment (greedy cleaning policy)."""
        candidates = [
            s
            for s in range(self.config.n_segments)
            if s != self._head_segment and s not in self._free
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda s: (len(self._live[s]), s))
        if len(self._live[victim]) >= self.config.segment_blocks:
            return None  # everything fully live: cleaning cannot help
        return victim
