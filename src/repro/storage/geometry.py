"""Multi-zone disk geometry.

Section 2.1.2 ("Geometry"): "disks have multiple zones, with performance
across zones differing by up to a factor of two.  ...unless disks are
treated identically, different disks will have different layouts and thus
different performance characteristics."

A :class:`ZoneGeometry` maps a logical block address to the transfer rate
of the zone holding it.  Outer zones (low addresses, by convention here)
pack more sectors per track and therefore stream faster.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Zone", "ZoneGeometry", "uniform_geometry", "zoned_geometry"]


@dataclass(frozen=True)
class Zone:
    """A contiguous run of blocks served at one transfer rate."""

    blocks: int
    rate: float  # MB/s while streaming inside this zone

    def __post_init__(self):
        if self.blocks <= 0:
            raise ValueError(f"zone must hold > 0 blocks, got {self.blocks}")
        if self.rate <= 0:
            raise ValueError(f"zone rate must be > 0, got {self.rate}")


class ZoneGeometry:
    """The zone table of one disk.

    Blocks are addressed ``0 .. capacity_blocks - 1``; zone boundaries are
    cumulative.  Lookup is O(log zones).
    """

    def __init__(self, zones: Sequence[Zone]):
        if not zones:
            raise ValueError("need at least one zone")
        self.zones: List[Zone] = list(zones)
        self._bounds: List[int] = []
        total = 0
        for zone in self.zones:
            total += zone.blocks
            self._bounds.append(total)
        self.capacity_blocks = total

    def zone_of(self, lba: int) -> Zone:
        """The zone containing logical block ``lba``."""
        if not 0 <= lba < self.capacity_blocks:
            raise ValueError(f"lba {lba} outside [0, {self.capacity_blocks})")
        return self.zones[bisect_right(self._bounds, lba)]

    def rate_at(self, lba: int) -> float:
        """Streaming transfer rate (MB/s) at ``lba``."""
        return self.zone_of(lba).rate

    @property
    def max_rate(self) -> float:
        """Fastest (outermost) zone rate: the disk's headline bandwidth."""
        return max(z.rate for z in self.zones)

    @property
    def min_rate(self) -> float:
        """Slowest (innermost) zone rate."""
        return min(z.rate for z in self.zones)

    def mean_rate(self) -> float:
        """Capacity-weighted mean transfer rate."""
        total = sum(z.blocks * z.rate for z in self.zones)
        return total / self.capacity_blocks

    def __repr__(self) -> str:
        return (
            f"ZoneGeometry({len(self.zones)} zones, {self.capacity_blocks} blocks, "
            f"{self.min_rate:.2f}-{self.max_rate:.2f} MB/s)"
        )


def uniform_geometry(capacity_blocks: int, rate: float) -> ZoneGeometry:
    """A single-zone disk: constant ``rate`` everywhere."""
    return ZoneGeometry([Zone(capacity_blocks, rate)])


def zoned_geometry(
    capacity_blocks: int,
    outer_rate: float,
    inner_rate: float,
    n_zones: int = 8,
) -> ZoneGeometry:
    """A realistic multi-zone profile tapering from outer to inner rate.

    With the paper's factor-of-two spread: ``zoned_geometry(N, 11.0, 5.5)``.
    Zones are equal-sized except the last absorbs the remainder.
    """
    if n_zones < 1:
        raise ValueError(f"n_zones must be >= 1, got {n_zones}")
    if capacity_blocks < n_zones:
        raise ValueError(f"capacity {capacity_blocks} smaller than n_zones {n_zones}")
    if outer_rate < inner_rate:
        raise ValueError("outer zones are faster: need outer_rate >= inner_rate")
    base = capacity_blocks // n_zones
    zones = []
    for i in range(n_zones):
        blocks = base if i < n_zones - 1 else capacity_blocks - base * (n_zones - 1)
        if n_zones == 1:
            rate = outer_rate
        else:
            rate = outer_rate - (outer_rate - inner_rate) * i / (n_zones - 1)
        zones.append(Zone(blocks, rate))
    return ZoneGeometry(zones)
