"""Multi-zone disk geometry.

Section 2.1.2 ("Geometry"): "disks have multiple zones, with performance
across zones differing by up to a factor of two.  ...unless disks are
treated identically, different disks will have different layouts and thus
different performance characteristics."

A :class:`ZoneGeometry` maps a logical block address to the transfer rate
of the zone holding it.  Outer zones (low addresses, by convention here)
pack more sectors per track and therefore stream faster.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Zone", "ZoneGeometry", "uniform_geometry", "zoned_geometry"]


@dataclass(frozen=True)
class Zone:
    """A contiguous run of blocks served at one transfer rate."""

    blocks: int
    rate: float  # MB/s while streaming inside this zone

    def __post_init__(self):
        if self.blocks <= 0:
            raise ValueError(f"zone must hold > 0 blocks, got {self.blocks}")
        if self.rate <= 0:
            raise ValueError(f"zone rate must be > 0, got {self.rate}")


class ZoneGeometry:
    """The zone table of one disk.

    Blocks are addressed ``0 .. capacity_blocks - 1``; zone boundaries are
    cumulative.  Lookup is O(log zones).

    Alongside the boundary table the constructor precomputes a cumulative
    transfer-seconds prefix table ``_prefix``: entry ``i`` is the time to
    stream zones ``0 .. i-1`` end to end at 1 MB per block.  The table is
    strictly increasing (every zone has ``blocks > 0`` and ``rate > 0``)
    with exactly one entry per zone boundary, which is what lets
    :meth:`transfer_seconds` answer any ``[lba, lba + n)`` interval with
    two bisects and a subtraction instead of a per-zone loop.
    """

    def __init__(self, zones: Sequence[Zone]):
        if not zones:
            raise ValueError("need at least one zone")
        self.zones: List[Zone] = list(zones)
        self._bounds: List[int] = []
        self._rates: List[float] = []
        self._prefix: List[float] = [0.0]
        total = 0
        for zone in self.zones:
            total += zone.blocks
            self._bounds.append(total)
            self._rates.append(zone.rate)
            self._prefix.append(self._prefix[-1] + zone.blocks / zone.rate)
        self.capacity_blocks = total

    def zone_index(self, lba: int) -> int:
        """Index of the zone containing logical block ``lba``."""
        if not 0 <= lba < self.capacity_blocks:
            raise ValueError(f"lba {lba} outside [0, {self.capacity_blocks})")
        return bisect_right(self._bounds, lba)

    def zone_of(self, lba: int) -> Zone:
        """The zone containing logical block ``lba``."""
        return self.zones[self.zone_index(lba)]

    def rate_at(self, lba: int) -> float:
        """Streaming transfer rate (MB/s) at ``lba``."""
        return self.zone_of(lba).rate

    def span_end(self, lba: int) -> int:
        """First block past the zone containing ``lba`` (O(log zones))."""
        return self._bounds[self.zone_index(lba)]

    def _cumulative_seconds(self, lba: int) -> float:
        """Seconds to stream ``[0, lba)`` at 1 MB per block: the prefix
        table evaluated between boundaries."""
        if lba <= 0:
            return 0.0
        i = bisect_right(self._bounds, lba - 1)
        zone_start = self._bounds[i] - self.zones[i].blocks
        return self._prefix[i] + (lba - zone_start) / self._rates[i]

    def transfer_seconds(self, lba: int, nblocks: int, block_size_mb: float = 1.0) -> float:
        """Analytic streaming time for ``[lba, lba + nblocks)``.

        Closed-form ``(T[lba + n] - T[lba]) * block_size_mb`` over the
        cumulative prefix table: O(log zones) regardless of how many
        zones the interval crosses.  Agrees with the per-span
        accumulation in :meth:`Disk.service_time` to within float
        rounding, but the subtraction cancels — absolute error scales
        with the table magnitude rather than the interval (the property
        tests pin this bound) — so use it for gauging and estimates;
        the disk model itself keeps the bit-exact per-span path.
        """
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        if not (0 <= lba and lba + nblocks <= self.capacity_blocks):
            raise ValueError(
                f"interval [{lba}, {lba + nblocks}) outside geometry of "
                f"{self.capacity_blocks} blocks"
            )
        return (
            self._cumulative_seconds(lba + nblocks) - self._cumulative_seconds(lba)
        ) * block_size_mb

    @property
    def max_rate(self) -> float:
        """Fastest (outermost) zone rate: the disk's headline bandwidth."""
        return max(z.rate for z in self.zones)

    @property
    def min_rate(self) -> float:
        """Slowest (innermost) zone rate."""
        return min(z.rate for z in self.zones)

    def mean_rate(self) -> float:
        """Capacity-weighted mean transfer rate."""
        total = sum(z.blocks * z.rate for z in self.zones)
        return total / self.capacity_blocks

    def __repr__(self) -> str:
        return (
            f"ZoneGeometry({len(self.zones)} zones, {self.capacity_blocks} blocks, "
            f"{self.min_rate:.2f}-{self.max_rate:.2f} MB/s)"
        )


def uniform_geometry(capacity_blocks: int, rate: float) -> ZoneGeometry:
    """A single-zone disk: constant ``rate`` everywhere."""
    return ZoneGeometry([Zone(capacity_blocks, rate)])


def zoned_geometry(
    capacity_blocks: int,
    outer_rate: float,
    inner_rate: float,
    n_zones: int = 8,
) -> ZoneGeometry:
    """A realistic multi-zone profile tapering from outer to inner rate.

    With the paper's factor-of-two spread: ``zoned_geometry(N, 11.0, 5.5)``.
    Zones are equal-sized except the last absorbs the remainder.
    """
    if n_zones < 1:
        raise ValueError(f"n_zones must be >= 1, got {n_zones}")
    if capacity_blocks < n_zones:
        raise ValueError(f"capacity {capacity_blocks} smaller than n_zones {n_zones}")
    if outer_rate < inner_rate:
        raise ValueError("outer zones are faster: need outer_rate >= inner_rate")
    base = capacity_blocks // n_zones
    zones = []
    for i in range(n_zones):
        blocks = base if i < n_zones - 1 else capacity_blocks - base * (n_zones - 1)
        if n_zones == 1:
            rate = outer_rate
        else:
            rate = outer_rate - (outer_rate - inner_rate) * i / (n_zones - 1)
        zones.append(Zone(blocks, rate))
    return ZoneGeometry(zones)
