"""Command-line entry point.

Usage::

    python -m repro list                 # experiment ids + bundled scenarios
    python -m repro run e01 e14          # regenerate specific experiments
    python -m repro run all              # regenerate everything
    python -m repro report               # full EXPERIMENTS.md content
    python -m repro report --workers 4   # parallel cache-miss regeneration
    python -m repro report --no-cache    # recompute everything from scratch
    python -m repro campaign --seed 7    # fault-campaign policy scorecard
    python -m repro sweep --count 100    # generative sweep vs. the oracle
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS, experiment_substrates
from .experiments.report import CLAIMS, generate


def _cmd_list() -> int:
    substrates = experiment_substrates()
    width = max(len(tag) for tag in substrates.values())
    for key in ALL_EXPERIMENTS:
        claim = CLAIMS.get(key, "")
        first_sentence = claim.split(". ")[0][:90]
        print(f"{key:<5} {substrates[key]:<{width}}  {first_sentence}")
    from .scenario import bundle

    print()
    print("bundled scenarios (src/repro/scenarios/):")
    for name, compiled in bundle.scenarios().items():
        spec = compiled.spec
        shape = (
            f"{spec.groups.count}x{spec.groups.size} {spec.groups.prefix}*"
        )
        verdicts = compiled.eligibility()
        engines = []
        for engine_name in ("discrete", "hybrid", "batch"):
            eligible, reason = verdicts[engine_name]
            if not eligible:
                continue
            qualifier = "*" if "only" in reason else ""
            engines.append(engine_name + qualifier)
        print(
            f"{name:<10} {spec.groups.substrate:<8} {shape:<12} "
            f"engines: {', '.join(engines)}"
        )
    print(
        "  (* = timer-free policies only; see "
        "`repro.scenario.CompiledScenario.eligibility`)"
    )
    return 0


def _cmd_run(ids) -> int:
    if ids == ["all"]:
        ids = list(ALL_EXPERIMENTS)
    unknown = [key for key in ids if key not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for key in ids:
        print(ALL_EXPERIMENTS[key]().render())
        print()
    return 0


def _cmd_report(args) -> int:
    from .analysis.cache import ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(generate(workers=args.workers, cache=cache))
    return 0


def _cmd_campaign(args) -> int:
    from .faults.campaign import FAMILIES, WORKLOADS, run_campaign
    from .policy import policy_names

    known_policies = policy_names()
    unknown = [f for f in args.families if f not in FAMILIES]
    unknown += [w for w in args.workloads if w not in WORKLOADS]
    unknown += [p for p in args.policies if p not in known_policies]
    if unknown:
        print(f"unknown campaign names: {', '.join(unknown)}", file=sys.stderr)
        print(
            f"families: {', '.join(FAMILIES)}; workloads: "
            f"{', '.join(WORKLOADS)}; policies: {', '.join(known_policies)}",
            file=sys.stderr,
        )
        return 2
    result = run_campaign(
        seed=args.seed,
        workloads=tuple(args.workloads),
        families=tuple(args.families),
        policies=tuple(args.policies),
        scenarios_per_family=args.scenarios,
        verify_determinism=not args.no_verify,
        engine=args.engine,
    )
    table = result.table()
    print(table.render())
    print()
    print(f"scorecard digest: {table.digest()}")
    if result.violations:
        print(f"{len(result.violations)} oracle violations:", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args) -> int:
    from .scenario import run_sweep

    result = run_sweep(
        seed=args.seed,
        count=args.count,
        engine=args.engine,
        verify_determinism=not args.no_verify,
    )
    print(result.table().render())
    print()
    print(f"sweep digest: {result.digest()}")
    if result.fallbacks:
        print(f"{len(result.fallbacks)} hybrid-infeasible scenarios ran discrete:")
        for name, reason in result.fallbacks:
            print(f"  {name}: {reason}")
    if result.violations:
        print(f"{len(result.violations)} oracle violations:", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fail-stutter fault tolerance reproduction: experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="enumerate experiment ids, claims and bundled scenarios"
    )
    run_parser = sub.add_parser("run", help="regenerate experiments by id")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (or 'all')")
    report_parser = sub.add_parser(
        "report", help="print the full EXPERIMENTS.md content"
    )
    report_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for cache-miss experiments (default: serial)",
    )
    report_parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every experiment, bypassing the result cache",
    )
    report_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro/experiments)",
    )
    campaign_parser = sub.add_parser(
        "campaign",
        help="run the fault campaign and print the policy scorecard",
    )
    campaign_parser.add_argument(
        "--seed", type=int, default=7, help="campaign seed (default: 7)"
    )
    campaign_parser.add_argument(
        "--scenarios", type=int, default=3, metavar="N",
        help="scenarios drawn per family (default: 3)",
    )
    # Choice lists come from the live registries (bundled spec files and
    # the policy roster), so spec-defined entries appear automatically.
    from .faults.campaign import FAMILIES, WORKLOADS
    from .policy import policy_names

    campaign_parser.add_argument(
        "--families", nargs="+", default=["magnitude", "correlated", "failstop"],
        metavar="FAMILY",
        help=f"scenario families to sweep ({', '.join(FAMILIES)})",
    )
    campaign_parser.add_argument(
        "--workloads", nargs="+", default=["raid10", "dht"],
        metavar="WORKLOAD",
        help=f"workloads to drive ({', '.join(WORKLOADS)})",
    )
    campaign_parser.add_argument(
        "--policies", nargs="+",
        default=list(policy_names()[:-1]),
        metavar="POLICY",
        help=f"mitigation policies to score ({', '.join(policy_names())})",
    )
    campaign_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the oracle's same-seed rerun (halves runtime)",
    )
    campaign_parser.add_argument(
        "--engine", choices=["discrete", "hybrid"], default="discrete",
        help="execution engine: exact event simulation, or fluid "
             "fast-forwarding between fault windows (default: discrete)",
    )
    sweep_parser = sub.add_parser(
        "sweep",
        help="run machine-generated scenarios against the invariant oracle",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=7, help="generator seed (default: 7)"
    )
    sweep_parser.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="number of generated scenarios (default: 25)",
    )
    sweep_parser.add_argument(
        "--engine", choices=["discrete", "hybrid"], default="discrete",
        help="execution engine; hybrid-infeasible scenarios fall back to "
             "discrete by name (default: discrete)",
    )
    sweep_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the oracle's same-seed rerun (halves runtime)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return _cmd_report(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
