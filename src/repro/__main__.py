"""Command-line entry point.

Usage::

    python -m repro list                 # experiment ids + bundled scenarios
    python -m repro run e01 e14          # regenerate specific experiments
    python -m repro run all              # regenerate everything
    python -m repro report               # full EXPERIMENTS.md content
    python -m repro report --workers 4   # parallel cache-miss regeneration
    python -m repro report --no-cache    # recompute everything from scratch
    python -m repro campaign --seed 7    # fault-campaign policy scorecard
    python -m repro campaign --trace t.jsonl      # ...streamed to a trace file
    python -m repro campaign --soak --windows 12  # long-horizon soak campaign
    python -m repro sweep --count 100    # generative sweep vs. the oracle
    python -m repro replay t.jsonl       # reconstruct scorecard from a trace
    python -m repro replay t.jsonl --verify  # re-run + byte-for-byte diff
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS, experiment_substrates
from .experiments.report import CLAIMS, generate


def _cmd_list() -> int:
    substrates = experiment_substrates()
    width = max(len(tag) for tag in substrates.values())
    for key in ALL_EXPERIMENTS:
        claim = CLAIMS.get(key, "")
        first_sentence = claim.split(". ")[0][:90]
        print(f"{key:<5} {substrates[key]:<{width}}  {first_sentence}")
    from .scenario import bundle

    print()
    print("bundled scenarios (src/repro/scenarios/):")
    for name, compiled in bundle.scenarios().items():
        spec = compiled.spec
        shape = (
            f"{spec.groups.count}x{spec.groups.size} {spec.groups.prefix}*"
        )
        verdicts = compiled.eligibility()
        engines = []
        for engine_name in ("discrete", "hybrid", "batch"):
            eligible, reason = verdicts[engine_name]
            if not eligible:
                continue
            qualifier = "*" if "only" in reason else ""
            engines.append(engine_name + qualifier)
        print(
            f"{name:<10} {spec.groups.substrate:<8} {shape:<12} "
            f"engines: {', '.join(engines)}"
        )
    print(
        "  (* = timer-free policies only; see "
        "`repro.scenario.CompiledScenario.eligibility`)"
    )
    return 0


def _cmd_run(ids) -> int:
    if ids == ["all"]:
        ids = list(ALL_EXPERIMENTS)
    unknown = [key for key in ids if key not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for key in ids:
        print(ALL_EXPERIMENTS[key]().render())
        print()
    return 0


def _cmd_report(args) -> int:
    from .analysis.cache import ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(generate(workers=args.workers, cache=cache))
    return 0


def _cmd_campaign(args) -> int:
    from .faults.campaign import FAMILIES, WORKLOADS, run_campaign
    from .policy import policy_names

    known_policies = policy_names()
    unknown = [f for f in args.families if f not in FAMILIES]
    unknown += [w for w in args.workloads if w not in WORKLOADS]
    unknown += [p for p in args.policies if p not in known_policies]
    if unknown:
        print(f"unknown campaign names: {', '.join(unknown)}", file=sys.stderr)
        print(
            f"families: {', '.join(FAMILIES)}; workloads: "
            f"{', '.join(WORKLOADS)}; policies: {', '.join(known_policies)}",
            file=sys.stderr,
        )
        return 2
    # --engine defaults by mode: soak campaigns exist for long horizons,
    # where the hybrid engine is the only affordable path.
    engine = args.engine or ("hybrid" if args.soak else "discrete")
    if args.soak:
        return _cmd_soak(args, engine)
    if args.trace:
        from .telemetry import record_campaign

        result = record_campaign(
            args.trace,
            csv_path=args.trace_csv,
            seed=args.seed,
            workloads=tuple(args.workloads),
            families=tuple(args.families),
            policies=tuple(args.policies),
            scenarios_per_family=args.scenarios,
            n_requests=args.requests,
            engine=engine,
            verify_determinism=not args.no_verify,
        )
    else:
        result = run_campaign(
            seed=args.seed,
            workloads=tuple(args.workloads),
            families=tuple(args.families),
            policies=tuple(args.policies),
            scenarios_per_family=args.scenarios,
            n_requests=args.requests,
            verify_determinism=not args.no_verify,
            engine=engine,
        )
    table = result.table()
    print(table.render())
    print()
    print(f"scorecard digest: {table.digest()}")
    if args.trace:
        print(f"trace: {args.trace}")
    if result.violations:
        print(f"{len(result.violations)} oracle violations:", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_soak(args, engine: str) -> int:
    """The --soak arm of the campaign subcommand."""
    from .faults.campaign import run_soak
    from .telemetry import record_soak

    # Soak drives ONE (workload, family, policy) cell for a long time;
    # when the sweep-shaped defaults are still in place, narrow to the
    # soak defaults rather than guessing among several.
    workload = args.workloads[0] if len(args.workloads) == 1 else "raid10"
    family = args.families[0] if len(args.families) == 1 else "magnitude"
    policy = args.policies[0] if len(args.policies) == 1 else "stutter-aware"
    if args.trace:
        result = record_soak(
            args.trace,
            csv_path=args.trace_csv,
            seed=args.seed,
            workload=workload,
            family=family,
            policy=policy,
            n_windows=args.windows,
            injectors_per_window=args.injectors,
            n_requests=args.requests,
            engine=engine,
            rolling=args.rolling,
            retain_windows=False,
        )
        hours = result.horizon / 3600.0
        print(
            f"soak: {result.workload} x {result.family} x {result.policy} "
            f"({result.engine}, seed {result.seed}): {result.n_windows} "
            f"windows, {hours:.2f}h virtual, {result.requests} requests, "
            f"{result.injectors} injector events"
        )
        print(
            f"  slo violations {result.slo_violations} "
            f"({100.0 * result.slo_fraction:.3f}%), final rolling mean "
            f"{result.final_rolling_mean:.4f}s / p99 "
            f"{result.final_rolling_p99:.4f}s"
        )
        print(f"  per-window scorecards streamed to {args.trace} "
              f"(replay with: python -m repro replay {args.trace})")
    else:
        result = run_soak(
            seed=args.seed,
            workload=workload,
            family=family,
            policy=policy,
            n_windows=args.windows,
            injectors_per_window=args.injectors,
            n_requests=args.requests,
            engine=engine,
            rolling=args.rolling,
            retain_windows=True,
        )
        print(result.table().render())
    if result.violations:
        print(f"{len(result.violations)} oracle violations:", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args) -> int:
    from .telemetry import TraceError, TraceSchemaError, replay_trace, verify_trace

    try:
        replay = replay_trace(args.trace)
    except TraceSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(replay.render())
    status = 0
    if replay.read.truncated or not replay.consistent:
        status = 1
    if args.verify:
        result = verify_trace(args.trace,
                              keep_regenerated=args.keep_regenerated)
        print()
        print(result.render())
        if not result.ok:
            status = 1
    return status


def _cmd_sweep(args) -> int:
    from .scenario import run_sweep

    result = run_sweep(
        seed=args.seed,
        count=args.count,
        engine=args.engine,
        verify_determinism=not args.no_verify,
    )
    print(result.table().render())
    print()
    print(f"sweep digest: {result.digest()}")
    if result.fallbacks:
        print(f"{len(result.fallbacks)} hybrid-infeasible scenarios ran discrete:")
        for name, reason in result.fallbacks:
            print(f"  {name}: {reason}")
    if result.violations:
        print(f"{len(result.violations)} oracle violations:", file=sys.stderr)
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fail-stutter fault tolerance reproduction: experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="enumerate experiment ids, claims and bundled scenarios"
    )
    run_parser = sub.add_parser("run", help="regenerate experiments by id")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (or 'all')")
    report_parser = sub.add_parser(
        "report", help="print the full EXPERIMENTS.md content"
    )
    report_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for cache-miss experiments (default: serial)",
    )
    report_parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every experiment, bypassing the result cache",
    )
    report_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro/experiments)",
    )
    campaign_parser = sub.add_parser(
        "campaign",
        help="run the fault campaign and print the policy scorecard",
    )
    campaign_parser.add_argument(
        "--seed", type=int, default=7, help="campaign seed (default: 7)"
    )
    campaign_parser.add_argument(
        "--scenarios", type=int, default=3, metavar="N",
        help="scenarios drawn per family (default: 3)",
    )
    # Choice lists come from the live registries (bundled spec files and
    # the policy roster), so spec-defined entries appear automatically.
    from .faults.campaign import FAMILIES, WORKLOADS
    from .policy import policy_names

    campaign_parser.add_argument(
        "--families", nargs="+", default=["magnitude", "correlated", "failstop"],
        metavar="FAMILY",
        help=f"scenario families to sweep ({', '.join(FAMILIES)})",
    )
    campaign_parser.add_argument(
        "--workloads", nargs="+", default=["raid10", "dht"],
        metavar="WORKLOAD",
        help=f"workloads to drive ({', '.join(WORKLOADS)})",
    )
    campaign_parser.add_argument(
        "--policies", nargs="+",
        default=list(policy_names()[:-1]),
        metavar="POLICY",
        help=f"mitigation policies to score ({', '.join(policy_names())})",
    )
    campaign_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the oracle's same-seed rerun (halves runtime)",
    )
    campaign_parser.add_argument(
        "--engine", choices=["discrete", "hybrid"], default=None,
        help="execution engine: exact event simulation, or fluid "
             "fast-forwarding between fault windows (default: discrete; "
             "hybrid with --soak)",
    )
    campaign_parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="override every workload's request count (soak: per window)",
    )
    campaign_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream every run's telemetry to a schema-versioned JSONL "
             "trace (replayable with `python -m repro replay`)",
    )
    campaign_parser.add_argument(
        "--trace-csv", default=None, metavar="PATH",
        help="also write the raw record stream as CSV (needs --trace)",
    )
    campaign_parser.add_argument(
        "--soak", action="store_true",
        help="soak mode: one (workload, family, policy) cell driven for "
             "--windows windows of overlapping injectors, rolling-window "
             "scorecards; defaults to raid10/magnitude/stutter-aware "
             "unless exactly one of each is named",
    )
    campaign_parser.add_argument(
        "--windows", type=int, default=6, metavar="N",
        help="soak windows to drive (default: 6)",
    )
    campaign_parser.add_argument(
        "--injectors", type=int, default=2, metavar="N",
        help="independent fault draws merged per soak window (default: 2)",
    )
    campaign_parser.add_argument(
        "--rolling", type=int, default=4, metavar="N",
        help="trailing windows in the rolling scorecard (default: 4)",
    )
    sweep_parser = sub.add_parser(
        "sweep",
        help="run machine-generated scenarios against the invariant oracle",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=7, help="generator seed (default: 7)"
    )
    sweep_parser.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="number of generated scenarios (default: 25)",
    )
    sweep_parser.add_argument(
        "--engine", choices=["discrete", "hybrid"], default="discrete",
        help="execution engine; hybrid-infeasible scenarios fall back to "
             "discrete by name (default: discrete)",
    )
    sweep_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the oracle's same-seed rerun (halves runtime)",
    )
    replay_parser = sub.add_parser(
        "replay",
        help="reconstruct timelines and scorecards from a trace file",
    )
    replay_parser.add_argument("trace", help="path to a repro-trace JSONL file")
    replay_parser.add_argument(
        "--verify", action="store_true",
        help="re-run the scenario embedded in the trace header and demand "
             "a byte-for-byte identical regenerated trace",
    )
    replay_parser.add_argument(
        "--keep-regenerated", default=None, metavar="PATH",
        help="with --verify, keep the regenerated trace at PATH for diffing",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_report(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
