"""NOW-Sort-style parallel external sort (E11).

The workload behind "Searching for the Sorting Record": every node reads
its share of records from its local disk, sorts them (CPU), and writes
runs back out.  The global sort completes when the *last* node finishes
-- the barrier that turns one CPU-hogged node into a global factor-of-two
slowdown under static partitioning.

The sort is expressed as chunk tasks so every scheduling policy in
:mod:`repro.core` applies:

* ``static`` -- equal pre-partitioning (the fail-stop illusion);
* ``proportional`` -- pre-partitioning by currently gauged node rates;
* ``pull`` -- River-style pulling (:class:`~repro.core.pull.PullScheduler`);
* ``hedged`` -- pull plus straggler duplication
  (:class:`~repro.core.hedging.HedgingScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.allocation import apportion
from ..core.hedging import HedgingScheduler
from ..core.pull import PullScheduler
from ..sim.engine import Process, Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from .node import Node

__all__ = ["SortConfig", "SortResult", "run_sort", "make_sort_cluster"]

SORT_MODES = ("static", "proportional", "pull", "hedged")


@dataclass(frozen=True)
class SortConfig:
    """Parameters of one parallel sort run."""

    total_mb: float = 800.0
    chunk_mb: float = 8.0

    def __post_init__(self):
        if self.total_mb <= 0 or self.chunk_mb <= 0:
            raise ValueError("sizes must be > 0")
        if self.chunk_mb > self.total_mb:
            raise ValueError("chunk larger than the dataset")

    @property
    def n_chunks(self) -> int:
        """Number of chunk tasks (remainder folded into the last chunk)."""
        return max(1, int(self.total_mb // self.chunk_mb))


@dataclass
class SortResult:
    """Outcome of a parallel sort."""

    mode: str
    total_mb: float
    started_at: float
    finished_at: float
    chunks_per_node: List[int]
    duplicates: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock (virtual) seconds for the whole sort."""
        return self.finished_at - self.started_at

    @property
    def throughput_mb_s(self) -> float:
        """Sorted MB/s."""
        if self.duration <= 0:
            return float("inf")
        return self.total_mb / self.duration


def make_sort_cluster(
    sim: Simulator,
    n_nodes: int = 8,
    cpu_rate: float = 10.0,
    disk_rate: float = 200.0,
    memory_mb: float = 512.0,
) -> List[Node]:
    """Nodes with fast local disks so the sort is CPU-bound (NOW-Sort)."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    params = DiskParams(rpm=10_000, avg_seek=0.005, block_size_mb=1.0)
    nodes = []
    for i in range(n_nodes):
        disk = Disk(
            sim,
            f"n{i}.disk",
            geometry=uniform_geometry(1_000_000, disk_rate),
            params=params,
        )
        nodes.append(Node(sim, f"n{i}", cpu_rate=cpu_rate, memory_mb=memory_mb, disk=disk))
    return nodes


def _chunk_executor(sim: Simulator, nodes: Sequence[Node]):
    """Build execute(worker, chunk_mb): read -> sort -> write on a node."""
    read_ptr: Dict[int, int] = {}
    write_ptr: Dict[int, int] = {}

    def execute(worker_index: int, chunk_mb: float):
        node = nodes[worker_index]

        def go():
            blocks = max(1, round(chunk_mb / node.disk.params.block_size_mb))
            r = read_ptr.get(worker_index, 0)
            yield node.disk.read(r, blocks)
            read_ptr[worker_index] = r + blocks
            yield node.compute(chunk_mb)
            w = write_ptr.get(worker_index, 500_000)
            yield node.disk.write(w, blocks)
            write_ptr[worker_index] = w + blocks
            return None

        return sim.process(go())

    return execute


def run_sort(
    sim: Simulator,
    nodes: Sequence[Node],
    config: SortConfig = SortConfig(),
    mode: str = "static",
    hedge_after: Optional[float] = None,
) -> Process:
    """Run one parallel sort; the process returns a :class:`SortResult`."""
    if mode not in SORT_MODES:
        raise ValueError(f"mode must be one of {SORT_MODES}, got {mode!r}")
    if not nodes:
        raise ValueError("need at least one node")
    for node in nodes:
        if node.disk is None:
            raise ValueError(f"node {node.name} has no local disk")

    chunks = [config.chunk_mb] * config.n_chunks
    # Fold the remainder into the final chunk so total_mb is exact.
    chunks[-1] += config.total_mb - config.chunk_mb * config.n_chunks
    execute = _chunk_executor(sim, nodes)

    def static_shares() -> List[int]:
        if mode == "static":
            return apportion(len(chunks), [1.0] * len(nodes))
        rates = [n.cpu.effective_rate for n in nodes]
        return apportion(len(chunks), rates)

    def go():
        start = sim.now
        if mode in ("static", "proportional"):
            shares = static_shares()

            def node_worker(index: int, count: int):
                offset = sum(shares[:index])
                for k in range(count):
                    yield execute(index, chunks[offset + k])

            workers = [
                sim.process(node_worker(i, count))
                for i, count in enumerate(shares)
                if count > 0
            ]
            yield sim.all_of(workers)
            return SortResult(
                mode=mode,
                total_mb=config.total_mb,
                started_at=start,
                finished_at=sim.now,
                chunks_per_node=shares,
            )
        if mode == "pull":
            result = yield PullScheduler().run(sim, chunks, len(nodes), execute)
            return SortResult(
                mode=mode,
                total_mb=config.total_mb,
                started_at=start,
                finished_at=sim.now,
                chunks_per_node=result.tasks_per_worker(len(nodes)),
            )
        # hedged
        scheduler = HedgingScheduler(hedge_after=hedge_after)
        result = yield scheduler.run(sim, chunks, len(nodes), execute)
        counts = [0] * len(nodes)
        for worker in result.winners.values():
            counts[worker] += 1
        return SortResult(
            mode=mode,
            total_mb=config.total_mb,
            started_at=start,
            finished_at=result.finished_at,
            chunks_per_node=counts,
            duplicates=result.duplicates_launched,
        )

    return sim.process(go())
