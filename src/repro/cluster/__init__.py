"""Cluster substrate: nodes, interference, parallel sort, DHT, interactive.

* :mod:`repro.cluster.node` -- CPU/memory/disk nodes.
* :mod:`repro.cluster.interference` -- CPU and memory hogs (Section 2.2.2).
* :mod:`repro.cluster.sort` -- NOW-Sort-style parallel sort under four
  scheduling policies.
* :mod:`repro.cluster.dht` -- replicated DHT with GC-pause bottlenecks.
* :mod:`repro.cluster.interactive` -- interactive jobs vs. memory hogs.
"""

from .dht import DhtStats, ReplicatedDht
from .interactive import InteractiveJob, InteractiveResult
from .interference import CpuHog, MemoryHog
from .node import Memory, Node
from .sort import SortConfig, SortResult, make_sort_cluster, run_sort

__all__ = [
    "Node",
    "Memory",
    "CpuHog",
    "MemoryHog",
    "InteractiveJob",
    "InteractiveResult",
    "SortConfig",
    "SortResult",
    "run_sort",
    "make_sort_cluster",
    "ReplicatedDht",
    "DhtStats",
]
