"""Interactive jobs competing with memory hogs (Brown & Mowry, E10).

The victim is an interactive job with a working set.  While the working
set fits in the memory left over by other reservations, each operation
costs only its CPU time.  When a memory hog pushes part of the working
set out, every operation must page the missing megabytes back in from
disk at random-I/O rates before it can run -- the mechanism behind the
paper's "up to 40 times worse" response times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.engine import Process, Simulator
from .node import Node

__all__ = ["InteractiveJob", "InteractiveResult"]


@dataclass(frozen=True)
class InteractiveResult:
    """Response-time record of an interactive session."""

    response_times: tuple

    @property
    def mean(self) -> float:
        """Mean response time."""
        return sum(self.response_times) / len(self.response_times)

    @property
    def worst(self) -> float:
        """Worst response time."""
        return max(self.response_times)


class InteractiveJob:
    """A think-compute loop whose working set may be paged out.

    Parameters
    ----------
    working_set_mb:
        Memory the job touches on every operation.
    op_cpu_mb:
        CPU work (MB processed) per operation.
    page_in_rate:
        MB/s at which evicted pages come back (random-I/O rate -- far
        below the disk's sequential bandwidth).
    think_time:
        Idle gap between operations.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        working_set_mb: float = 64.0,
        op_cpu_mb: float = 1.0,
        page_in_rate: float = 5.0,
        think_time: float = 0.5,
        owner: str = "interactive",
    ):
        if working_set_mb <= 0:
            raise ValueError(f"working_set_mb must be > 0, got {working_set_mb}")
        if op_cpu_mb <= 0:
            raise ValueError(f"op_cpu_mb must be > 0, got {op_cpu_mb}")
        if page_in_rate <= 0:
            raise ValueError(f"page_in_rate must be > 0, got {page_in_rate}")
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {think_time}")
        self.sim = sim
        self.node = node
        self.working_set_mb = working_set_mb
        self.op_cpu_mb = op_cpu_mb
        self.page_in_rate = page_in_rate
        self.think_time = think_time
        self.owner = owner

    def resident_mb(self) -> float:
        """How much of the working set currently fits in memory."""
        return min(self.working_set_mb, self.node.memory.available(excluding=self.owner))

    def missing_mb(self) -> float:
        """Working-set megabytes that must be paged in per operation."""
        return self.working_set_mb - self.resident_mb()

    def run(self, n_ops: int) -> Process:
        """Perform ``n_ops``; the process returns an InteractiveResult."""
        if n_ops < 1:
            raise ValueError(f"n_ops must be >= 1, got {n_ops}")

        def go():
            times: List[float] = []
            self.node.memory.reserve(self.owner, self.resident_mb())
            for i in range(n_ops):
                start = self.sim.now
                # Re-evaluate residency each op: the hog may come and go.
                resident = self.resident_mb()
                self.node.memory.reserve(self.owner, resident)
                missing = self.working_set_mb - resident
                if missing > 0:
                    yield self.sim.timeout(missing / self.page_in_rate)
                yield self.node.compute(self.op_cpu_mb)
                times.append(self.sim.now - start)
                if self.think_time > 0 and i + 1 < n_ops:
                    yield self.sim.timeout(self.think_time)
            self.node.memory.release(self.owner)
            return InteractiveResult(response_times=tuple(times))

        return self.sim.process(go())
