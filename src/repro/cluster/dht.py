"""A replicated distributed hash table with GC pauses (Gribble, E12).

Section 2.2.1: "untimely garbage collection causes one node to fall
behind its mirror in a replicated update.  The result is that one
machine over-saturates and thus is the bottleneck."

:class:`ReplicatedDht` stores keys on mirror pairs of storage "bricks".
A put is acknowledged only when *both* members have applied it, so a
brick stalled in GC holds every put to its pair hostage -- the mirror
has done its work and sits on a growing queue of unacknowledged
updates.

Two placement policies:

* ``hash`` -- keys are hashed to a fixed pair (the deployed system);
* ``adaptive`` -- *new* keys are placed on the least-backlogged pair and
  remembered in a key map (fail-stutter placement; existing keys cannot
  move, which bounds how much adaptation can recover -- exactly the
  bookkeeping-vs-robustness trade-off of Section 3.2's third scenario).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.component import CompositeComponent
from ..faults.component import DegradableServer
from ..faults.model import ComponentStopped
from ..faults.spec import PerformanceSpec
from ..sim.engine import Process, Simulator

__all__ = ["ReplicatedDht", "DhtStats"]


@dataclass
class DhtStats:
    """Operation counters for one DHT instance."""

    puts: int = 0
    gets: int = 0
    new_keys: int = 0


class ReplicatedDht(CompositeComponent):
    """Mirror-pair replicated key-value bricks."""

    substrate = "cluster"

    PLACEMENTS = ("hash", "adaptive")

    def __init__(
        self,
        sim: Simulator,
        n_pairs: int = 4,
        brick_rate: float = 100.0,
        op_work: float = 1.0,
        placement: str = "hash",
        name: str = "dht",
    ):
        if n_pairs < 1:
            raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
        if brick_rate <= 0 or op_work <= 0:
            raise ValueError("rates and work must be > 0")
        if placement not in self.PLACEMENTS:
            raise ValueError(f"placement must be one of {self.PLACEMENTS}")
        self.sim = sim
        self.n_pairs = n_pairs
        self.op_work = op_work
        self.placement = placement
        self.bricks: List[DegradableServer] = [
            DegradableServer(sim, f"brick{i}", brick_rate) for i in range(2 * n_pairs)
        ]
        self._key_map: Dict[str, int] = {}
        self._values: Dict[str, object] = {}
        self.stats = DhtStats()
        self._init_component(
            sim, name, self.bricks, PerformanceSpec(2 * n_pairs * brick_rate)
        )

    # -- placement ------------------------------------------------------------

    def pair_members(self, pair: int) -> Tuple[DegradableServer, DegradableServer]:
        """The two bricks mirroring pair ``pair``."""
        return self.bricks[2 * pair], self.bricks[2 * pair + 1]

    @staticmethod
    def _hash_pair(key: str, n_pairs: int) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % n_pairs

    def _pair_backlog(self, pair: int) -> int:
        a, b = self.pair_members(pair)
        return max(
            a.queue_length + (1 if a.busy else 0),
            b.queue_length + (1 if b.busy else 0),
        )

    def place(self, key: str) -> int:
        """Pair index for ``key`` under the configured placement."""
        if self.placement == "hash":
            return self._hash_pair(key, self.n_pairs)
        known = self._key_map.get(key)
        if known is not None:
            return known
        pair = min(range(self.n_pairs), key=lambda p: (self._pair_backlog(p), p))
        self._key_map[key] = pair
        self.stats.new_keys += 1
        return pair

    @property
    def bookkeeping_entries(self) -> int:
        """Size of the adaptive key map (0 under hash placement)."""
        return len(self._key_map)

    # -- operations ---------------------------------------------------------------

    def put(self, key: str, value: object = None) -> Process:
        """Replicated write; the process returns the put latency."""
        pair = self.place(key)
        a, b = self.pair_members(pair)
        self.stats.puts += 1

        def go():
            start = self.sim.now
            if a.stopped and b.stopped:
                raise ComponentStopped(f"pair{pair}")
            writes = [
                member.submit(self.op_work)
                for member in (a, b)
                if not member.stopped
            ]
            yield self.sim.all_of(writes)
            self._values[key] = value
            return self.sim.now - start

        return self.sim.process(go())

    def get(self, key: str) -> Process:
        """Read from the less-backlogged live mirror; returns the value."""
        pair = self.place(key)
        a, b = self.pair_members(pair)
        self.stats.gets += 1

        def go():
            live = [m for m in (a, b) if not m.stopped]
            if not live:
                raise ComponentStopped(f"pair{pair}")
            member = min(live, key=lambda m: m.queue_length)
            yield member.submit(self.op_work)
            return self._values.get(key)

        return self.sim.process(go())

    def pair_of(self, key: str) -> Optional[int]:
        """Where ``key`` currently lives (None if never placed adaptively)."""
        if self.placement == "hash":
            return self._hash_pair(key, self.n_pairs)
        return self._key_map.get(key)
