"""Cluster nodes: CPU, memory, and an optional local disk.

A :class:`Node` bundles the resources the Section 2.2 evidence involves:
a degradable CPU (work unit: MB processed), a :class:`Memory` with named
reservations (so memory hogs and victim working sets can be accounted
against each other), and optionally a local :class:`~repro.storage.disk.Disk`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.component import CompositeComponent
from ..faults.component import DegradableServer
from ..faults.model import DegradableMixin, register_component
from ..faults.spec import PerformanceSpec
from ..sim.engine import Event, Simulator
from ..storage.disk import Disk

__all__ = ["Memory", "Node"]


class Memory(DegradableMixin):
    """Physical memory with named reservations.

    Reservations may overcommit (that is the point: a memory hog pushes
    the victim's working set out); :meth:`available` never goes below
    zero.

    Memory is a *capacity* component: the degradable "rate" is resident
    megabytes, so a slowdown factor models capacity loss (a hog claiming
    pages, a failing DIMM bank) and fail-stop models the DIMM going away
    entirely.  Pass ``sim`` to give it a clock and register it with a
    :class:`~repro.core.system.System`.
    """

    substrate = "cluster"

    def __init__(self, total_mb: float, sim: Optional[Simulator] = None,
                 name: str = "memory"):
        if total_mb <= 0:
            raise ValueError(f"total_mb must be > 0, got {total_mb}")
        self.sim = sim
        self.total_mb = float(total_mb)
        self._reservations: Dict[str, float] = {}
        self._init_degradable(name, total_mb)
        self.attach_spec(PerformanceSpec(total_mb))
        if sim is not None:
            register_component(sim, self)

    # -- DegradableMixin hooks ---------------------------------------------------

    def _apply_rate(self, rate: float) -> None:
        pass  # capacity has no queue to re-rate; available() reads it live

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    @property
    def effective_mb(self) -> float:
        """Capacity after fault factors (== total when healthy)."""
        return self.effective_rate

    def reserve(self, owner: str, mb: float) -> None:
        """Set ``owner``'s resident claim to ``mb`` (replaces any prior)."""
        if mb < 0:
            raise ValueError(f"mb must be >= 0, got {mb}")
        self._reservations[owner] = mb

    def release(self, owner: str) -> None:
        """Drop ``owner``'s claim entirely (no-op if absent)."""
        self._reservations.pop(owner, None)

    def reserved(self, owner: Optional[str] = None) -> float:
        """Total reserved MB, or one owner's claim."""
        if owner is not None:
            return self._reservations.get(owner, 0.0)
        return sum(self._reservations.values())

    def available(self, excluding: Optional[str] = None) -> float:
        """MB left for a (possibly new) claimant.

        ``excluding`` ignores one owner's existing claim -- used when that
        owner asks "how much could *I* keep resident".
        """
        used = sum(
            mb for owner, mb in self._reservations.items() if owner != excluding
        )
        return max(0.0, self.effective_mb - used)

    @property
    def pressure(self) -> float:
        """Reserved over effective capacity; above 1.0 means overcommitted."""
        return self.reserved() / self.effective_mb


class Node(CompositeComponent):
    """One cluster node: CPU + memory (+ optional local disk)."""

    substrate = "cluster"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_rate: float = 20.0,
        memory_mb: float = 512.0,
        disk: Optional[Disk] = None,
    ):
        self.sim = sim
        self.cpu = DegradableServer(sim, f"{name}.cpu", cpu_rate)
        self.memory = Memory(memory_mb, sim, f"{name}.mem")
        self.disk = disk
        children = [self.cpu, self.memory] + ([disk] if disk is not None else [])
        self._init_component(sim, name, children, PerformanceSpec(cpu_rate))

    def compute(self, mb: float) -> Event:
        """Process ``mb`` of data on the CPU; fires with JobStats."""
        return self.cpu.submit(mb)

    def delivered_rate(self) -> float:
        """The CPU's delivered rate (the node spec's own units)."""
        return self.cpu.delivered_rate()

    @property
    def stopped(self) -> bool:
        """True when the node's CPU has fail-stopped."""
        return self.cpu.stopped

    def __repr__(self) -> str:
        return f"<Node {self.name} cpu={self.cpu.effective_rate:.3g} MB/s>"
