"""Cluster nodes: CPU, memory, and an optional local disk.

A :class:`Node` bundles the resources the Section 2.2 evidence involves:
a degradable CPU (work unit: MB processed), a :class:`Memory` with named
reservations (so memory hogs and victim working sets can be accounted
against each other), and optionally a local :class:`~repro.storage.disk.Disk`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..faults.component import DegradableServer
from ..sim.engine import Event, Simulator
from ..storage.disk import Disk

__all__ = ["Memory", "Node"]


class Memory:
    """Physical memory with named reservations.

    Reservations may overcommit (that is the point: a memory hog pushes
    the victim's working set out); :meth:`available` never goes below
    zero.
    """

    def __init__(self, total_mb: float):
        if total_mb <= 0:
            raise ValueError(f"total_mb must be > 0, got {total_mb}")
        self.total_mb = float(total_mb)
        self._reservations: Dict[str, float] = {}

    def reserve(self, owner: str, mb: float) -> None:
        """Set ``owner``'s resident claim to ``mb`` (replaces any prior)."""
        if mb < 0:
            raise ValueError(f"mb must be >= 0, got {mb}")
        self._reservations[owner] = mb

    def release(self, owner: str) -> None:
        """Drop ``owner``'s claim entirely (no-op if absent)."""
        self._reservations.pop(owner, None)

    def reserved(self, owner: Optional[str] = None) -> float:
        """Total reserved MB, or one owner's claim."""
        if owner is not None:
            return self._reservations.get(owner, 0.0)
        return sum(self._reservations.values())

    def available(self, excluding: Optional[str] = None) -> float:
        """MB left for a (possibly new) claimant.

        ``excluding`` ignores one owner's existing claim -- used when that
        owner asks "how much could *I* keep resident".
        """
        used = sum(
            mb for owner, mb in self._reservations.items() if owner != excluding
        )
        return max(0.0, self.total_mb - used)

    @property
    def pressure(self) -> float:
        """Reserved over total; above 1.0 means overcommitted."""
        return self.reserved() / self.total_mb


class Node:
    """One cluster node: CPU + memory (+ optional local disk)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_rate: float = 20.0,
        memory_mb: float = 512.0,
        disk: Optional[Disk] = None,
    ):
        self.sim = sim
        self.name = name
        self.cpu = DegradableServer(sim, f"{name}.cpu", cpu_rate)
        self.memory = Memory(memory_mb)
        self.disk = disk

    def compute(self, mb: float) -> Event:
        """Process ``mb`` of data on the CPU; fires with JobStats."""
        return self.cpu.submit(mb)

    @property
    def stopped(self) -> bool:
        """True when the node's CPU has fail-stopped."""
        return self.cpu.stopped

    def __repr__(self) -> str:
        return f"<Node {self.name} cpu={self.cpu.effective_rate:.3g} MB/s>"
