"""Interference from competing applications (Section 2.2.2).

* :class:`CpuHog` -- "a node with excess CPU load reduces global sorting
  performance by a factor of two" (NOW-Sort).  Claims a share of a
  node's CPU for some interval.
* :class:`MemoryHog` -- Brown & Mowry's out-of-core application: "the
  response time of the interactive job is shown to be up to 40 times
  worse when competing with a memory-intensive process."  Claims
  resident memory, pushing victims' working sets out.
"""

from __future__ import annotations

from typing import Optional

from ..faults.library import InterferenceLoad
from ..sim.engine import Simulator
from .node import Node

__all__ = ["CpuHog", "MemoryHog"]


class CpuHog:
    """A competing process stealing CPU cycles on one node."""

    def __init__(self, share: float, at: float = 0.0, duration: Optional[float] = None):
        # Validation delegated to InterferenceLoad.
        self._injector = InterferenceLoad(share=share, at=at, duration=duration)
        self.share = share
        self.at = at
        self.duration = duration

    def attach(self, sim: Simulator, node: Node) -> None:
        """Start the hog against ``node``'s CPU."""
        self._injector.attach(sim, node.cpu)


class MemoryHog:
    """A competing process claiming resident memory on one node."""

    def __init__(
        self,
        resident_mb: float,
        at: float = 0.0,
        duration: Optional[float] = None,
        owner: str = "memory-hog",
    ):
        if resident_mb <= 0:
            raise ValueError(f"resident_mb must be > 0, got {resident_mb}")
        if at < 0:
            raise ValueError(f"at must be >= 0, got {at}")
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.resident_mb = resident_mb
        self.at = at
        self.duration = duration
        self.owner = owner

    def attach(self, sim: Simulator, node: Node) -> None:
        """Start the hog against ``node``'s memory."""

        def run():
            if self.at > 0:
                yield sim.timeout(self.at)
            node.memory.reserve(self.owner, self.resident_mb)
            if self.duration is None:
                return
            yield sim.timeout(self.duration)
            node.memory.release(self.owner)

        sim.process(run())
