"""E1: the Section 3.2 worked example -- RAID-10 under three designs.

Workload: write D data blocks in parallel across N mirror pairs.

Paper's analysis, with N pairs at B MB/s and one pair at b < B:

* scenario 1 (fail-stop design, uniform striping): throughput ``N * b``;
* scenario 2 (static-fault-aware, proportional striping): ``(N-1)*B + b``
  under a static skew, but back to tracking the slow disk if rates shift
  after installation;
* scenario 3 (general faults, adaptive striping): near the full available
  bandwidth under both static and dynamic faults, at the cost of
  per-block bookkeeping.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.system import System
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid1Pair
from ..storage.striping import AdaptiveStriping, ProportionalStriping, UniformStriping

__all__ = ["run"]

POLICIES = {
    "uniform": UniformStriping,
    "proportional": ProportionalStriping,
    "adaptive": AdaptiveStriping,
}


def _make_pairs(sim: System, n_pairs: int, rate: float):
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    pairs = []
    for i in range(n_pairs):
        d1 = Disk(sim, f"d{2*i}", geometry=uniform_geometry(200_000, rate), params=params)
        d2 = Disk(sim, f"d{2*i+1}", geometry=uniform_geometry(200_000, rate), params=params)
        pairs.append(Raid1Pair(sim, d1, d2))
    return pairs


def _one_run(policy_name: str, scenario: str, n_pairs: int, rate_b: float,
             slow_factor: float, n_blocks: int) -> float:
    sim = System()
    pairs = _make_pairs(sim, n_pairs, rate_b)
    # Registry wiring: the faulted disk is addressed by registered name,
    # not by position in the builder's return value.
    slow_disk = sim.components.get(f"d{2 * n_pairs - 2}")
    if scenario == "static-fault":
        slow_disk.set_slowdown("skew", slow_factor)
    elif scenario == "dynamic-fault":
        sim.schedule(1.0, slow_disk.set_slowdown, "skew", slow_factor)
    policy = POLICIES[policy_name]()
    result = sim.run(until=policy.run(sim, pairs, n_blocks, block_value=1))
    return result.throughput_mb_s


def _cell(point: Tuple[str, str], n_pairs: int, rate_b: float, slow_factor: float,
          n_blocks: int) -> float:
    """One (scenario, policy) sweep point: an independent simulation,
    module-level so it can run in a worker process."""
    scenario, policy = point
    return _one_run(policy, scenario, n_pairs, rate_b, slow_factor, n_blocks)


def analytic(scenario: str, policy: str, n: int, big: float, small: float) -> float:
    """The paper's closed-form prediction for each cell."""
    if scenario == "healthy":
        return n * big
    if policy == "uniform":
        return n * small
    if policy == "proportional" and scenario == "dynamic-fault":
        # Gauged equal at install, so behaves like uniform once the fault
        # lands (exact value depends on when; the shape is 'tracks b').
        return n * small
    return (n - 1) * big + small


def run(n_pairs: int = 4, rate_b: float = 5.5, slow_factor: float = 0.5,
        n_blocks: int = 400, workers: Optional[int] = None) -> Table:
    """Regenerate the E1 table: policy x scenario throughput.

    The nine (scenario, policy) cells are independent simulations;
    ``workers`` runs them through a process pool (``None`` = serial,
    byte-identical output).
    """
    small = rate_b * slow_factor
    table = Table(
        "E1: Section 3.2 RAID-10 write throughput (MB/s), "
        f"N={n_pairs} pairs, B={rate_b}, b={small}",
        ["scenario", "policy", "measured MB/s", "paper analytic MB/s", "bookkeeping"],
        note="dynamic-fault analytic values are the 'tracks the slow disk' bound",
    )
    points = [
        (scenario, policy)
        for scenario in ("healthy", "static-fault", "dynamic-fault")
        for policy in ("uniform", "proportional", "adaptive")
    ]
    cell_fn = partial(_cell, n_pairs=n_pairs, rate_b=rate_b,
                      slow_factor=slow_factor, n_blocks=n_blocks)
    for (scenario, policy), measured in parallel_sweep(points, cell_fn, workers=workers):
        bookkeeping = n_blocks if policy == "adaptive" else 0
        table.add_row(
            scenario,
            policy,
            measured,
            analytic(scenario, policy, n_pairs, rate_b, small),
            bookkeeping,
        )
    return table
