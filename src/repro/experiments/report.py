"""Regenerate the full EXPERIMENTS.md content.

Usage::

    python -m repro.experiments.report > EXPERIMENTS.md
    python -m repro.experiments.report --workers 4 > EXPERIMENTS.md
    python -m repro.experiments.report --no-cache > EXPERIMENTS.md

Each section pairs the paper's claim with the freshly measured table, so
the document can always be rebuilt from the code it describes.  Results
are memoized in a content-addressed on-disk cache (see
:mod:`repro.analysis.cache`; ``--no-cache`` bypasses it, deleting the
cache directory wipes it) and cache misses run in parallel across
``--workers`` processes.  The output is byte-identical to a serial,
uncached run at any worker count and any cache state.
"""

from __future__ import annotations

import argparse
from typing import Iterable, Optional

from ..analysis.cache import ResultCache
from . import ALL_EXPERIMENTS

__all__ = ["CLAIMS", "generate", "main"]

#: Paper claim per experiment id, quoted or paraphrased from the text.
CLAIMS = {
    "e01": "Section 3.2: with N mirror pairs at B MB/s and one pair at b < B, "
    "a fail-stop design delivers N*b; gauging once at install recovers "
    "(N-1)*B + b under a *static* fault only; continuous adaptation holds it "
    "under arbitrary rate changes, at the cost of per-block bookkeeping.",
    "e02": "Section 1: 'if performance of a single disk is consistently lower "
    "than the rest, the performance of the entire storage system tracks that "
    "of the single, slow disk.'",
    "e03": "Section 2.1.2: a Hawk with 3x the block faults of its peers "
    "delivered 5.0 MB/s instead of 5.5 MB/s (~91%) on sequential reads, "
    "blamed on transparent SCSI bad-block remappings.",
    "e04": "Section 2.1.2: SCSI timeouts and parity errors are 49% of all "
    "errors (87% with network errors removed), roughly two per day, and "
    "'often lead to SCSI bus resets, affecting the performance of all disks "
    "on the degraded SCSI chain.'",
    "e05": "Section 2.1.2: 'disks have multiple zones, with performance "
    "across zones differing by up to a factor of two.'",
    "e06": "Section 2.1.2 (Vesta): 'a cluster of measurements that gave "
    "near-peak results, while the other measurements were spread relatively "
    "widely down to as low as 15-20% of peak performance.'",
    "e07": "Section 2.1.3: under load 'certain routes receive preference; "
    "... the unfairness resulted in a 50% slowdown to a global adaptive data "
    "transfer.'",
    "e08": "Section 2.1.3 (CM-5): 'once a receiver falls behind the others, "
    "messages accumulate in the network and cause excessive network "
    "contention, reducing transpose performance by almost a factor of three.'",
    "e09": "Section 2.1.3: 'by waiting too long between packets that form a "
    "logical message, the deadlock-detection hardware triggers ... halting "
    "all switch traffic for two seconds.'",
    "e10": "Section 2.2.2 (Brown & Mowry): 'the response time of the "
    "interactive job is shown to be up to 40 times worse when competing with "
    "a memory-intensive process for memory resources.'",
    "e11": "Section 2.2.2 (NOW-Sort): 'A node with excess CPU load reduces "
    "global sorting performance by a factor of two.'",
    "e12": "Section 2.2.1 (Gribble): 'untimely garbage collection causes one "
    "node to fall behind its mirror in a replicated update. The result is "
    "that one machine over-saturates and thus is the bottleneck.'",
    "e13": "Section 2.2.1: 'Sequential file read performance across aged "
    "file systems varies by up to a factor of two ... when the file systems "
    "are recreated afresh, performance is identical across all drives.'",
    "e14": "Section 3.3: 'A system that only utilizes the fail-stop model is "
    "likely to deliver poor performance under even a single performance "
    "failure; if performance does not meet the threshold, availability "
    "decreases. In contrast, a system that takes performance failures into "
    "account is likely to deliver consistent, high performance, thus "
    "increasing availability.'",
    "e15": "Section 2.1.1 (Viking): fault masking sells flawed chips as "
    "identical -- 'the [effective size of the] first level cache is only 4K "
    "and is direct-mapped' against a 16 KB 4-way spec, with 'performance "
    "differences of up to 40%' across chips.",
    "e16": "Section 2.1.1 (Kushman, UltraSPARC-I): 'a program, executed "
    "twice on the same processor under identical conditions, has run times "
    "that vary by up to a factor of three,' from next-field prediction and "
    "fetch-logic state.",
    "e17": "Section 2.2.1 (Chen & Bershad): 'virtual-memory mapping "
    "decisions can reduce application performance by up to 50% ... the "
    "allocation of pages in memory will affect the cache-miss rate.'",
    "e18": "Section 2.2.2 (Raghavan & Hayes): 'perturbations to a vector "
    "reference stream can reduce memory system efficiency by up to a factor "
    "of two.'",
    "e19": "Section 3.3 (Reliability): 'erratic performance may be an early "
    "indicator of impending failure' -- a stutter-trend predictor warns of "
    "wear-out before fail-stop.",
    "e20": "Section 2.1.1 (Bressoud & Schneider): 'An identical series of "
    "location-references and TLB-insert operations at the processors running "
    "the primary and backup virtual machines could lead to different TLB "
    "contents' -- nondeterministic hardware breaking replica determinism.",
    "e21": "Section 3.3 (Manageability): 'adding these faster components to "
    "incrementally scale the system is handled naturally, because the older "
    "components simply appear to be performance-faulty versions of the new "
    "ones' -- plug-and-play incremental growth.",
    "e22": "Section 4 (related work, the authors' River system): a "
    "distributed queue 'provides mechanisms to enable consistent and high "
    "performance in spite of erratic performance in underlying components' "
    "-- credit routing vs the static partitioning it replaced.",
    "e23": "Section 3.3 (Manageability): 'new workloads (and the imbalances "
    "they may bring) can be introduced into the system without fear, as "
    "those imbalances are handled by the performance-fault tolerance "
    "mechanisms.'",
    "e24": "Section 2.1.2 (Bolosky, Tiger video fileserver): disks 'would "
    "go off-line at random intervals for short periods of time, apparently "
    "due to thermal recalibrations' -- frame deadlines turn short stalls "
    "into user-visible glitches unless reads fail over or hedge.",
    "e25": "Section 3.1: 'a performance failure from the perspective of one "
    "component may not manifest itself to others (e.g., the failure is "
    "caused by a bad network link)' -- per-observer detector verdicts "
    "disagree unless the fault is on a shared path.",
    "e26": "Section 3 (the paper's thesis, evaluated in the aggregate): "
    "fail-stop designs 'do not behave well under performance faults' while "
    "a fail-stutter design keeps 'utilizing performance-faulty components' "
    "-- swept across seeded scenario *families*, stutter-aware scheduling "
    "beats every timeout policy under correlated stutters (lower latency, "
    "zero duplicate work) and matches them when the fault really is a "
    "fail-stop.",
    "e27": "Section 1 (the motivating trend): systems 'comprised of ever "
    "larger numbers of components' make somebody-is-always-stuttering the "
    "common case -- evaluating mitigation at that scale needs the hybrid "
    "fluid/discrete engine, which is certified exact against the discrete "
    "engine at overlap sizes and then drives the same fault scenarios at a "
    "million concurrent clients.  The saturated 'surge' rows extend the "
    "exact regime to sustained overload: per-request FIFO queueing delays "
    "are reconstructed in closed form and the backlog is handed across "
    "fluid/discrete window edges under a work-conservation audit.",
    "e28": "Section 5 (research agenda): 'environmental conditions are "
    "difficult to control ... designers of systems need to understand the "
    "range of behaviors' -- the paper's thesis holds across substrates and "
    "workload shapes, not just curated examples.  Scenarios become data: "
    "machine-generated topologies and fault schedules sweep against the "
    "universal invariant oracle on both the discrete and hybrid engines, "
    "with replay-stable digests.",
    "e29": "Section 5 (research agenda, deployed systems): performance "
    "faults arrive mid-life, not at t=0 -- a soak campaign drives hundreds "
    "of virtual hours through the hybrid engine at a million clients per "
    "window, streaming rolling-window scorecards instead of retaining "
    "state, and measures the rolling-window detection latency of a "
    "mid-soak stutter onset (hybrid engine, 10^6 clients): the planted "
    "correlated stutter surfaces in the first rolling scorecard whose "
    "window overlaps it, at window granularity.",
    "a1": "Section 3.1 design choice: 'erratic performance may occur quite "
    "frequently, and thus distributing that information may be overly "
    "expensive' vs. exporting 'performance state' for persistent faults.",
    "a2": "Section 3.1 design choice: 'if the disk request takes longer than "
    "T seconds to service, consider it absolutely failed' -- and the warning "
    "that treating working components as failed 'leads to a large waste of "
    "system resources.'",
    "a3": "Section 5 research agenda: detectors must be designed and "
    "evaluated; this ablation compares threshold, EWMA and peer-median "
    "detectors on detection lag vs. false positives.",
    "a4": "Section 3.2 scenario 3: 'this approach increases the amount of "
    "bookkeeping: ... the controller must record where each block is "
    "written. However, by increasing complexity, we create a system that is "
    "more robust.'",
    "a5": "Section 3.1 design choice: 'the simpler the model, the more "
    "likely performance faults occur' -- spec fidelity vs. nominal-fault "
    "frequency.",
    "a6": "Section 3.2 scenario 1 ('a reconstruction initiated to a hot "
    "spare'), reread under fail-stutter: the rebuild makes the survivor "
    "performance-faulty; the throttle trades the no-redundancy exposure "
    "window against foreground latency.",
    "a7": "Section 4 (Shasha & Turek): duplicating work 'elsewhere' needs a "
    "trigger -- the hedge-after threshold trades straggler rescue speed "
    "against duplicated (wasted) work.",
}


def generate(
    experiments: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> str:
    """The full EXPERIMENTS.md text with freshly measured tables.

    ``workers`` and ``cache`` only change how fast the tables arrive
    (see :func:`repro.experiments.runner.run_suite`); the text is
    byte-identical to a serial, uncached run.
    """
    from .runner import run_suite

    parts = [
        "# EXPERIMENTS — paper claims vs. measured reproduction",
        "",
        "Generated by `python -m repro.experiments.report`.  The paper is a",
        "position paper with no numbered tables or figures; the experiment",
        "ids E1–E28 and ablations A1–A7 are defined in DESIGN.md and cover",
        "every quantitative claim in the text plus the Section 3.2 worked",
        "example and the Section 3.3 benefit claims.  Absolute numbers come",
        "from a simulator calibrated to the paper's era (5.5 MB/s Hawks, 2 s",
        "resets); the reproduction target is the *shape* of each claim.",
        "",
    ]
    for run in run_suite(experiments, workers=workers, cache=cache):
        parts.append(f"## {run.experiment.upper()}")
        parts.append("")
        parts.append(f"**Paper:** {CLAIMS[run.experiment]}")
        parts.append("")
        parts.append("**Measured:**")
        parts.append("")
        parts.append("```")
        parts.append(run.table.render())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Regenerate the full EXPERIMENTS.md content on stdout.",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for cache-miss experiments (default: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every experiment, bypassing the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/experiments)",
    )
    args = parser.parse_args(argv)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(generate(workers=args.workers, cache=cache))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
