"""E23: workload modification without fear (Section 3.3).

"New workloads (and the imbalances they may bring) can be introduced
into the system without fear, as those imbalances are handled by the
performance-fault tolerance mechanisms."

The workload change: a uniformly spread put stream becomes heavily
skewed (Zipf-like popularity, as when a new application arrives).
Under hashed placement, the hot pairs saturate -- an *induced*
performance fault with no hardware misbehaving at all.  Adaptive
placement absorbs the skew because the overload looks exactly like any
other backlog.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..cluster.dht import ReplicatedDht
from ..sim.engine import Simulator
from ..sim.metrics import LatencyRecorder

__all__ = ["run"]


def _zipf_keys(n_ops: int, n_hot: int, hot_fraction: float, rng: random.Random):
    """Keys where ``hot_fraction`` of puts hit ``n_hot`` hot keys."""
    keys = []
    for i in range(n_ops):
        if rng.random() < hot_fraction:
            keys.append(f"hot{rng.randrange(n_hot)}")
        else:
            keys.append(f"cold{i}")
    return keys


def _drive(placement: str, hot_fraction: float, n_ops: int, gap: float, seed: int):
    sim = Simulator()
    dht = ReplicatedDht(sim, n_pairs=4, brick_rate=30.0, op_work=1.0,
                        placement=placement)
    rng = random.Random(seed)
    keys = _zipf_keys(n_ops, n_hot=3, hot_fraction=hot_fraction, rng=rng)
    recorder = LatencyRecorder()

    def one(key):
        latency = yield dht.put(key)
        recorder.record(latency)

    def source():
        for key in keys:
            sim.process(one(key))
            yield sim.timeout(gap)

    sim.process(source())
    sim.run(until=n_ops * gap * 20)
    return recorder.summary()


def run(
    hot_fractions: Sequence[float] = (0.0, 0.5, 0.8),
    n_ops: int = 600,
    gap: float = 0.012,
    seed: int = 53,
) -> Table:
    """Regenerate the E23 table: skew vs placement put latency."""
    table = Table(
        "E23: a new, skewed workload arrives -- hashed vs adaptive placement",
        ["hot-key fraction", "placement", "p50 (s)", "p99 (s)"],
        note="skew saturates the hot pairs under hashing (an induced "
        "performance fault); adaptive placement absorbs the imbalance "
        "for new keys",
    )
    for hot_fraction in hot_fractions:
        for placement in ("hash", "adaptive"):
            summary = _drive(placement, hot_fraction, n_ops, gap, seed)
            table.add_row(hot_fraction, placement, summary.p50, summary.p99)
    return table
