"""E8: a slow receiver collapses the all-to-all transpose (CM-5).

Section 2.1.3 (Brewer & Kuszmaul): "once a receiver falls behind the
others, messages accumulate in the network and cause excessive network
contention, reducing transpose performance by almost a factor of three."

Sweep the slow receiver's drain-rate factor; the shared-buffer switch
turns one lagging consumer into a global slowdown.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..network.switch import Switch, SwitchConfig
from ..network.transfer import all_to_all_transpose
from ..sim.engine import Simulator

__all__ = ["run"]


def _throughput(n_nodes: int, slow_factor: float, size_per_pair: float) -> float:
    sim = Simulator()
    switch = Switch(
        sim,
        SwitchConfig(
            n_ports=n_nodes,
            port_rate=10.0,
            core_rate=10.0 * n_nodes,
            receiver_rate=10.0,
            buffer_packets=4 * n_nodes,
        ),
    )
    if slow_factor < 1.0:
        switch.receivers[n_nodes // 2].set_slowdown("lag", slow_factor)
    result = sim.run(
        until=all_to_all_transpose(sim, switch, size_per_pair_mb=size_per_pair)
    )
    return result.throughput_mb_s


def run(
    n_nodes: int = 8,
    slow_factors: Sequence[float] = (1.0, 0.5, 0.33, 0.2, 0.1),
    size_per_pair: float = 2.0,
) -> Table:
    """Regenerate the E8 table: receiver lag vs transpose throughput."""
    table = Table(
        f"E8: {n_nodes}-node all-to-all transpose with one slow receiver",
        ["receiver factor", "transpose MB/s", "slowdown vs healthy"],
        note="paper: one lagging receiver cut transpose performance ~3x",
    )
    healthy = _throughput(n_nodes, 1.0, size_per_pair)
    for factor in slow_factors:
        mb_s = _throughput(n_nodes, factor, size_per_pair)
        table.add_row(factor, mb_s, healthy / mb_s)
    return table
