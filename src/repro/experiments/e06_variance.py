"""E6: run-to-run variance under transient stutters (Vesta).

Section 2.1.2: "there was typically a cluster of measurements that gave
near-peak results, while the other measurements were spread relatively
widely down to as low as 15-20% of peak performance."

Repeat the same fixed read benchmark many times on a component subject
to random transient stutters, and report the distribution relative to
peak -- the cluster-plus-tail shape is the target.

Each repetition is an *independent* simulation: its stutter process is
seeded per run (:func:`~repro.sim.random.derive_seed`) and the benchmark
starts at a random phase of that process, so a run samples the same
stationary behavior a long shared timeline would, while remaining safe
to execute in parallel workers.
"""

from __future__ import annotations

import math
import random
from functools import partial
from typing import Optional

from typing import Iterator, List, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.system import System
from ..faults.distributions import Exponential, Uniform
from ..faults.library import TransientStutter
from ..sim import _native
from ..sim.batch import LaneProgram, SeedBatchRunner
from ..sim.mt import MersenneBank
from ..sim.random import derive_seed, derive_seeds
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import sequential_scan

__all__ = ["run", "run_batch"]


def _one_benchmark(
    run_index: int,
    nblocks: int,
    stutter_mean_gap: float,
    stutter_mean_duration: float,
    seed: int,
) -> float:
    """Bandwidth of one benchmark repetition (independent sweep point)."""
    sim = System()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disk = Disk(sim, "vesta", geometry=uniform_geometry(2_000_000, 5.5), params=params)
    # Registry wiring: the injector reaches the disk by registered name.
    sim.inject(
        "vesta",
        TransientStutter(
            interarrival=Exponential(stutter_mean_gap),
            duration=Exponential(stutter_mean_duration),
            factor=Uniform(0.1, 0.3),
        ),
        random.Random(derive_seed(seed, f"e06/fault/{run_index}")),
    )
    # Start the benchmark at a random phase of the stutter process (two
    # full mean cycles of headroom), as the next run in a long shared
    # timeline would: some runs begin mid-episode, most in a quiet gap.
    phase_rng = random.Random(derive_seed(seed, f"e06/phase/{run_index}"))
    sim.run(until=phase_rng.uniform(0.0, 2.0 * (stutter_mean_gap + stutter_mean_duration)))
    result = sim.run(until=sequential_scan(sim, disk, start=0, nblocks=nblocks))
    return result.bandwidth_mb_s


def _stutter_edges(
    rng: "random.Random", mean_gap: float, mean_duration: float
) -> Iterator[Tuple[float, float]]:
    """Replay one run's :class:`TransientStutter` as batch rate edges.

    Draw order and heap-time arithmetic mirror
    ``TransientStutter._drive`` exactly -- gap, factor, duration per
    episode, absolute times accumulated by float addition of the resumed
    simulation time -- so the edge stream is bit-identical to what the
    injector would apply to the scalar disk (nominal rate 1.0, so the
    episode's effective rate is the factor itself).
    """
    t = 0.0
    while True:
        t = t + rng.expovariate(1.0 / mean_gap)
        factor = rng.uniform(0.1, 0.3)
        yield (t, factor)
        t = t + rng.expovariate(1.0 / mean_duration)
        yield (t, 1.0)


# Doubles prefetched per fault lane for the inlined edge generator; a
# full MT19937 block is 312, but typical lanes consume ~10, and the bulk
# ``tolist`` cost grows with the width.  16 episodes reach t ~ 300 s --
# far past any lane's finish -- so the refetch branch is cold.
_EDGE_PREFETCH = 48


def _stutter_edges_fast(
    bank: MersenneBank,
    gen: int,
    vals: List[float],
    mean_gap: float,
    mean_duration: float,
) -> Iterator[Tuple[float, float]]:
    """:func:`_stutter_edges` with the draw formulas inlined.

    Same arithmetic, op for op, as ``_stutter_edges`` over a
    ``BankRandom`` stream -- ``expovariate(lambd) = -log(1 - u) / lambd``,
    ``uniform(a, b) = a + (b - a) * u`` -- but reading prefetched raw
    doubles (``vals[j]`` is exactly the ``random()`` output the adapter
    would return) with no per-draw method dispatch.  The kernel's
    pre-start fast-forward pulls a few edges from every lane in plain
    Python, so dispatch there is the dominant per-edge cost.
    """
    lam_gap = 1.0 / mean_gap
    lam_dur = 1.0 / mean_duration
    log = math.log
    t = 0.0
    j = 0
    while True:
        if j + 3 > len(vals):
            vals = bank.doubles(gen, 2 * len(vals))
        t = t + -log(1.0 - vals[j]) / lam_gap
        factor = 0.1 + (0.3 - 0.1) * vals[j + 1]
        yield (t, factor)
        t = t + -log(1.0 - vals[j + 2]) / lam_dur
        j += 3
        yield (t, 1.0)


def _batch_bandwidths(
    n_runs: int,
    nblocks: int,
    stutter_mean_gap: float,
    stutter_mean_duration: float,
    seed: int,
) -> List[float]:
    """All ``n_runs`` bandwidths in one vectorized seed-batch run.

    Each run becomes one :class:`~repro.sim.batch.LaneProgram`: the scan's
    chunked reads (sizes from the *same* ``Disk.service_time`` arithmetic
    the scalar path uses), started at the run's phase draw, under the
    run's replayed stutter edge stream.  Results compare ``==`` against
    :func:`_one_benchmark` -- see
    ``tests/experiments/test_batch_equivalence.py``.
    """
    sim = System()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disk = Disk(sim, "vesta", geometry=uniform_geometry(2_000_000, 5.5), params=params)
    # sequential_scan's chunking: first request pays positioning (head
    # unknown), every later chunk continues at the head (sequential).
    works: List[float] = []
    at, left = 0, nblocks
    while left > 0:
        span = min(64, left)
        works.append(disk.service_time(at, span, sequential_hint=bool(works)))
        at += span
        left -= span

    # Two RNG streams per lane, same derivation as the scalar path.  When
    # the native seeder is available, all 2*n_runs MT19937 states are
    # built in one MersenneBank call (the per-lane random.Random
    # construction is otherwise the dominant batch cost); the bank's
    # streams replay random.Random bit for bit, so either source yields
    # the same lanes.
    phase_seeds = derive_seeds(seed, "e06/phase/", n_runs)
    fault_seeds = derive_seeds(seed, "e06/fault/", n_runs)
    high = 2.0 * (stutter_mean_gap + stutter_mean_duration)
    if _native.load() is not None:
        # emit=_EDGE_PREFETCH: phase lanes draw 1 double, fault lanes at
        # most the prefetch before the (cold) completion path kicks in.
        bank = MersenneBank(phase_seeds + fault_seeds, emit=_EDGE_PREFETCH)
        # The phase stream contributes exactly one uniform(0, high) draw;
        # 0.0 + high * r elementwise in float64 is bit-identical to
        # CPython's uniform formula, so take it straight off the bank.
        starts = (0.0 + high * bank.doubles_array(1)[:n_runs, 0]).tolist()
        # Fault lanes skip the BankRandom adapters entirely: one bulk
        # tolist of raw doubles feeds the inlined edge generator.
        rows = bank.doubles_array(_EDGE_PREFETCH)[n_runs:].tolist()
        edge_iters = [
            _stutter_edges_fast(
                bank, n_runs + i, rows[i], stutter_mean_gap, stutter_mean_duration
            )
            for i in range(n_runs)
        ]
    else:
        starts = [random.Random(s).uniform(0.0, high) for s in phase_seeds]
        edge_iters = [
            _stutter_edges(random.Random(s), stutter_mean_gap, stutter_mean_duration)
            for s in fault_seeds
        ]

    lanes = []
    for i in range(n_runs):
        lanes.append(
            LaneProgram(start=starts[i], works=works, edges=edge_iters[i])
        )
    result = SeedBatchRunner(lanes).run()
    mb = nblocks * params.block_size_mb
    return [
        mb / duration if duration > 0 else float("inf")
        for duration in result.makespan.tolist()
    ]


def run(
    n_runs: int = 60,
    nblocks: int = 22,
    stutter_mean_gap: float = 15.0,
    stutter_mean_duration: float = 4.0,
    seed: int = 11,
    workers: Optional[int] = None,
    batch: bool = False,
) -> Table:
    """Regenerate the E6 table: benchmark-time distribution vs peak.

    Each run takes ~2 s against stutter episodes averaging 4 s every
    ~19 s: most runs miss the episodes entirely (the near-peak cluster),
    while an unlucky run sits mostly inside one and lands at the
    episode's rate factor -- the paper's 15-20%-of-peak tail.  The runs
    are independent simulations; ``workers`` fans them out over a
    process pool (``None`` = serial, same output), while ``batch=True``
    runs them all as structure-of-arrays lanes of one
    :class:`~repro.sim.batch.SeedBatchRunner` (same output bit for bit,
    one process).
    """
    if batch:
        bandwidths = _batch_bandwidths(
            n_runs, nblocks, stutter_mean_gap, stutter_mean_duration, seed
        )
    else:
        run_fn = partial(
            _one_benchmark,
            nblocks=nblocks,
            stutter_mean_gap=stutter_mean_gap,
            stutter_mean_duration=stutter_mean_duration,
            seed=seed,
        )
        bandwidths = [b for _, b in parallel_sweep(range(n_runs), run_fn, workers=workers)]
    peak = max(bandwidths)
    fractions = sorted(b / peak for b in bandwidths)
    near_peak = sum(1 for f in fractions if f >= 0.9) / len(fractions)

    table = Table(
        f"E6: {n_runs} repeated runs of one benchmark under transient stutters",
        ["statistic", "fraction of peak"],
        note="paper: a near-peak cluster plus a tail down to 15-20% of peak",
    )
    table.add_row("best", 1.0)
    table.add_row("median", fractions[len(fractions) // 2])
    table.add_row("p10", fractions[max(0, len(fractions) // 10)])
    table.add_row("worst", fractions[0])
    table.add_row("share of runs within 10% of peak", near_peak)
    return table


def run_batch(**kwargs) -> Table:
    """E6 through the vectorized seed-batch path (bit-identical table)."""
    return run(batch=True, **kwargs)
