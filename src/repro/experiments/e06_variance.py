"""E6: run-to-run variance under transient stutters (Vesta).

Section 2.1.2: "there was typically a cluster of measurements that gave
near-peak results, while the other measurements were spread relatively
widely down to as low as 15-20% of peak performance."

Repeat the same fixed read benchmark many times on a component subject
to random transient stutters, and report the distribution relative to
peak -- the cluster-plus-tail shape is the target.

Each repetition is an *independent* simulation: its stutter process is
seeded per run (:func:`~repro.sim.random.derive_seed`) and the benchmark
starts at a random phase of that process, so a run samples the same
stationary behavior a long shared timeline would, while remaining safe
to execute in parallel workers.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.system import System
from ..faults.distributions import Exponential, Uniform
from ..faults.library import TransientStutter
from ..sim.random import derive_seed
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import sequential_scan

__all__ = ["run"]


def _one_benchmark(
    run_index: int,
    nblocks: int,
    stutter_mean_gap: float,
    stutter_mean_duration: float,
    seed: int,
) -> float:
    """Bandwidth of one benchmark repetition (independent sweep point)."""
    sim = System()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disk = Disk(sim, "vesta", geometry=uniform_geometry(2_000_000, 5.5), params=params)
    # Registry wiring: the injector reaches the disk by registered name.
    sim.inject(
        "vesta",
        TransientStutter(
            interarrival=Exponential(stutter_mean_gap),
            duration=Exponential(stutter_mean_duration),
            factor=Uniform(0.1, 0.3),
        ),
        random.Random(derive_seed(seed, f"e06/fault/{run_index}")),
    )
    # Start the benchmark at a random phase of the stutter process (two
    # full mean cycles of headroom), as the next run in a long shared
    # timeline would: some runs begin mid-episode, most in a quiet gap.
    phase_rng = random.Random(derive_seed(seed, f"e06/phase/{run_index}"))
    sim.run(until=phase_rng.uniform(0.0, 2.0 * (stutter_mean_gap + stutter_mean_duration)))
    result = sim.run(until=sequential_scan(sim, disk, start=0, nblocks=nblocks))
    return result.bandwidth_mb_s


def run(
    n_runs: int = 60,
    nblocks: int = 22,
    stutter_mean_gap: float = 15.0,
    stutter_mean_duration: float = 4.0,
    seed: int = 11,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E6 table: benchmark-time distribution vs peak.

    Each run takes ~2 s against stutter episodes averaging 4 s every
    ~19 s: most runs miss the episodes entirely (the near-peak cluster),
    while an unlucky run sits mostly inside one and lands at the
    episode's rate factor -- the paper's 15-20%-of-peak tail.  The runs
    are independent simulations; ``workers`` fans them out over a
    process pool (``None`` = serial, same output).
    """
    run_fn = partial(
        _one_benchmark,
        nblocks=nblocks,
        stutter_mean_gap=stutter_mean_gap,
        stutter_mean_duration=stutter_mean_duration,
        seed=seed,
    )
    bandwidths = [b for _, b in parallel_sweep(range(n_runs), run_fn, workers=workers)]
    peak = max(bandwidths)
    fractions = sorted(b / peak for b in bandwidths)
    near_peak = sum(1 for f in fractions if f >= 0.9) / len(fractions)

    table = Table(
        f"E6: {n_runs} repeated runs of one benchmark under transient stutters",
        ["statistic", "fraction of peak"],
        note="paper: a near-peak cluster plus a tail down to 15-20% of peak",
    )
    table.add_row("best", 1.0)
    table.add_row("median", fractions[len(fractions) // 2])
    table.add_row("p10", fractions[max(0, len(fractions) // 10)])
    table.add_row("worst", fractions[0])
    table.add_row("share of runs within 10% of peak", near_peak)
    return table
