"""E6: run-to-run variance under transient stutters (Vesta).

Section 2.1.2: "there was typically a cluster of measurements that gave
near-peak results, while the other measurements were spread relatively
widely down to as low as 15-20% of peak performance."

Repeat the same fixed read benchmark many times on a component subject
to random transient stutters, and report the distribution relative to
peak -- the cluster-plus-tail shape is the target.
"""

from __future__ import annotations

import random

from ..analysis.report import Table
from ..faults.distributions import Exponential, Uniform
from ..faults.library import TransientStutter
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import sequential_scan

__all__ = ["run"]


def run(
    n_runs: int = 60,
    nblocks: int = 22,
    stutter_mean_gap: float = 15.0,
    stutter_mean_duration: float = 4.0,
    seed: int = 11,
) -> Table:
    """Regenerate the E6 table: benchmark-time distribution vs peak.

    Each run takes ~2 s against stutter episodes averaging 4 s every
    ~19 s: most runs miss the episodes entirely (the near-peak cluster),
    while an unlucky run sits mostly inside one and lands at the
    episode's rate factor -- the paper's 15-20%-of-peak tail.
    """
    sim = Simulator()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disk = Disk(sim, "vesta", geometry=uniform_geometry(2_000_000, 5.5), params=params)
    TransientStutter(
        interarrival=Exponential(stutter_mean_gap),
        duration=Exponential(stutter_mean_duration),
        factor=Uniform(0.1, 0.3),
    ).attach(sim, disk, random.Random(seed))

    bandwidths = []

    def benchmark():
        for run_index in range(n_runs):
            result = yield sequential_scan(sim, disk, start=0, nblocks=nblocks)
            bandwidths.append(result.bandwidth_mb_s)
            yield sim.timeout(1.0)

    sim.run(until=sim.process(benchmark()))
    peak = max(bandwidths)
    fractions = sorted(b / peak for b in bandwidths)
    near_peak = sum(1 for f in fractions if f >= 0.9) / len(fractions)

    table = Table(
        f"E6: {n_runs} repeated runs of one benchmark under transient stutters",
        ["statistic", "fraction of peak"],
        note="paper: a near-peak cluster plus a tail down to 15-20% of peak",
    )
    table.add_row("best", 1.0)
    table.add_row("median", fractions[len(fractions) // 2])
    table.add_row("p10", fractions[max(0, len(fractions) // 10)])
    table.add_row("worst", fractions[0])
    table.add_row("share of runs within 10% of peak", near_peak)
    return table
