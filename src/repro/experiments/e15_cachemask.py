"""E15: cache fault masking -- 'identical' chips, 40% apart.

Section 2.1.1 (the Viking study): specified as 16 KB 4-way, "the [
effective size of the] first level cache is only 4K and is
direct-mapped" on some TI-produced parts, "finding performance
differences of up to 40%" across chips sold as the same product.

Run an application trace (a hot loop plus a medium-sized data sweep)
on the specified cache and on progressively masked variants, and
report runtime relative to the healthy part.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.report import Table
from ..processor.cache import Cache, CacheConfig, run_trace
from ..processor.workloads import working_set_loop

__all__ = ["run"]


def _app_trace(hot_bytes: int, medium_bytes: int, iterations: int) -> List[int]:
    """An app: 90% hot-loop references, 10% medium-array references.

    The hot set fits even the masked cache; the medium set fits only the
    full one -- the mix keeps the *application* slowdown at tens of
    percent rather than the raw thrash ratio.
    """
    hot = working_set_loop(hot_bytes, 1)
    medium = working_set_loop(medium_bytes, 1, base=1 << 20)
    trace: List[int] = []
    for __ in range(iterations):
        for i, address in enumerate(medium):
            trace.extend(hot[(i * 9) % len(hot) : (i * 9) % len(hot) + 9])
            trace.append(address)
    return trace


def run(
    masked_ways: Sequence[int] = (0, 1, 2, 3),
    hot_kb: int = 2,
    medium_kb: int = 10,
    iterations: int = 6,
    cpu_cycles_per_access: int = 6,
) -> Table:
    """Regenerate the E15 table: masked ways vs relative app runtime."""
    config = CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=32)
    trace = _app_trace(hot_kb * 1024, medium_kb * 1024, iterations)
    table = Table(
        "E15: 'identical' 16KB/4-way parts with fault-masked ways "
        f"(hot {hot_kb}KB + medium {medium_kb}KB app)",
        ["ways masked", "effective cache", "miss rate", "relative runtime"],
        note="paper: Viking parts sold as identical measured 4K "
        "direct-mapped, costing up to 40% in application performance",
    )
    baseline_cycles = None
    for masked in masked_ways:
        cache = Cache(config)
        if masked:
            cache.mask_ways(masked)
        cost = run_trace(cache, trace, hit_cycles=1, miss_cycles=20)
        app_cycles = cost.cycles + cost.accesses * cpu_cycles_per_access
        if baseline_cycles is None:
            baseline_cycles = app_cycles
        label = f"{cache.effective_size_bytes // 1024}KB/{config.ways - masked}-way"
        table.add_row(
            masked,
            label,
            cost.misses / cost.accesses,
            app_cycles / baseline_cycles,
        )
    return table
