"""E10: memory hogs vs interactive response time (Brown & Mowry).

Section 2.2.2: "the response time of the interactive job is shown to be
up to 40 times worse when competing with a memory-intensive process for
memory resources."

Sweep the hog's resident size; response time explodes once the victim's
working set no longer fits.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..cluster.interactive import InteractiveJob
from ..cluster.interference import MemoryHog
from ..cluster.node import Node
from ..sim.engine import Simulator

__all__ = ["run"]


def run(
    memory_mb: float = 512.0,
    working_set_mb: float = 64.0,
    hog_sizes: Sequence[float] = (0.0, 256.0, 448.0, 480.0, 500.0),
    n_ops: int = 10,
    page_in_rate: float = 5.0,
) -> Table:
    """Regenerate the E10 table: hog size vs interactive slowdown."""
    table = Table(
        f"E10: interactive job ({working_set_mb:.0f} MB working set) vs memory hog "
        f"({memory_mb:.0f} MB machine)",
        ["hog resident MB", "mean response s", "slowdown vs no hog"],
        note="paper: response time up to 40x worse under a memory hog",
    )
    baseline = None
    for hog_mb in hog_sizes:
        sim = Simulator()
        node = Node(sim, "n0", cpu_rate=20.0, memory_mb=memory_mb)
        if hog_mb > 0:
            MemoryHog(resident_mb=hog_mb).attach(sim, node)
        job = InteractiveJob(
            sim,
            node,
            working_set_mb=working_set_mb,
            op_cpu_mb=1.0,
            page_in_rate=page_in_rate,
            think_time=0.1,
        )
        result = sim.run(until=job.run(n_ops))
        if baseline is None:
            baseline = result.mean
        table.add_row(hog_mb, result.mean, result.mean / baseline)
    return table
