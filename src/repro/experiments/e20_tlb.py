"""E20: nondeterministic TLB replacement defeats replica determinism.

Section 2.1.1 (Bressoud & Schneider, hypervisor-based fault tolerance):
"The TLB replacement policy on our HP 9000/720 processors was
non-deterministic.  An identical series of location-references and
TLB-insert operations at the processors running the primary and backup
virtual machines could lead to different TLB contents."

Replay one reference stream through pairs of 'identical' TLBs and
measure content divergence under LRU (deterministic) vs RANDOM
replacement, across working-set pressures.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..processor.tlb import Tlb, divergence

__all__ = ["run"]


def _replay(policy: str, working_set: int, entries: int, n_refs: int, seed: int):
    rng_a = random.Random(seed) if policy == "random" else None
    rng_b = random.Random(seed + 1) if policy == "random" else None
    a = Tlb(entries=entries, policy=policy, rng=rng_a)
    b = Tlb(entries=entries, policy=policy, rng=rng_b)
    stream_rng = random.Random(seed + 2)
    for __ in range(n_refs):
        page = stream_rng.randrange(working_set)
        a.translate(page)
        b.translate(page)
    return divergence(a, b), a.miss_rate()


def run(
    entries: int = 64,
    working_sets: Sequence[int] = (48, 64, 96, 160),
    n_refs: int = 5000,
    seed: int = 47,
) -> Table:
    """Regenerate the E20 table: policy x pressure TLB divergence."""
    table = Table(
        f"E20: primary/backup TLB content divergence ({entries}-entry TLB, "
        "identical reference streams)",
        ["working set (pages)", "policy", "content divergence", "miss rate"],
        note="paper: identical reference series 'could lead to different "
        "TLB contents' on nondeterministic hardware; LRU replicas never "
        "diverge",
    )
    for working_set in working_sets:
        for policy in ("lru", "random"):
            div, miss_rate = _replay(policy, working_set, entries, n_refs, seed)
            table.add_row(working_set, policy, div, miss_rate)
    return table
