"""E9: deadlock-recovery stalls from slow logical messages.

Section 2.1.3: "by waiting too long between packets that form a logical
'message', the deadlock-detection hardware triggers and begins the
deadlock recovery process, halting all switch traffic for two seconds."

Sweep the application's inter-packet gap across the detector threshold
and measure message completion time and collateral damage to an
innocent bystander flow.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..network.switch import Switch, SwitchConfig
from ..network.transfer import send_message
from ..sim.engine import Simulator

__all__ = ["run"]


def run(
    gaps: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0),
    detector_gap: float = 0.25,
    stall: float = 2.0,
    n_packets: int = 8,
    packet_mb: float = 0.5,
) -> Table:
    """Regenerate the E9 table: inter-packet gap vs completion and stalls."""
    table = Table(
        f"E9: logical message vs deadlock detector (threshold {detector_gap}s, "
        f"stall {stall}s)",
        ["inter-packet gap", "message seconds", "deadlock events", "bystander seconds"],
        note="paper: each trigger halts all switch traffic for two seconds",
    )
    for gap in gaps:
        sim = Simulator()
        switch = Switch(
            sim,
            SwitchConfig(
                n_ports=4,
                port_rate=10.0,
                core_rate=40.0,
                receiver_rate=10.0,
                buffer_packets=16,
                deadlock_gap=detector_gap,
                deadlock_stall=stall,
            ),
        )
        message = send_message(
            sim, switch, 0, 1, n_packets=n_packets, packet_mb=packet_mb, gap=gap
        )

        bystander_times = []

        def bystander():
            while not message.triggered:
                start = sim.now
                yield switch.send(2, 3, 0.5)
                bystander_times.append(sim.now - start)
                yield sim.timeout(0.2)

        sim.process(bystander())
        result = sim.run(until=message)
        worst_bystander = max(bystander_times) if bystander_times else 0.0
        table.add_row(gap, result.duration, switch.deadlock_events, worst_bystander)
    return table
