"""Experiment runners: one module per row of DESIGN.md's index.

Every module exposes ``run(**params) -> repro.analysis.Table`` with
defaults sized for quick regeneration.  ``ALL_EXPERIMENTS`` maps the
experiment id to its runner; ``run_all`` regenerates everything (this is
what EXPERIMENTS.md records).
"""

import inspect
import sys
from typing import Callable, Dict, List

from ..analysis.report import Table
from ..core.component import SUBSTRATES
from . import (
    a1_notification,
    a2_threshold,
    a3_detectors,
    a4_bookkeeping,
    a5_spec,
    a6_rebuild,
    a7_hedging,
    e01_raid10,
    e02_striping,
    e03_badblocks,
    e04_scsi,
    e05_zones,
    e06_variance,
    e07_unfair,
    e08_transpose,
    e09_deadlock,
    e10_memhog,
    e11_cpuhog,
    e12_dht,
    e13_layout,
    e14_availability,
    e15_cachemask,
    e16_nondeterminism,
    e17_pagecolor,
    e18_membank,
    e19_prediction,
    e20_tlb,
    e21_growth,
    e22_river,
    e23_workload,
    e24_video,
    e25_observer,
    e26_campaign,
    e27_hybrid_scale,
    e28_generative,
    e29_soak,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "BATCH_EXPERIMENTS",
    "experiment_substrates",
    "run_all",
    "run_batched",
]

ALL_EXPERIMENTS: Dict[str, Callable[..., Table]] = {
    "e01": e01_raid10.run,
    "e02": e02_striping.run,
    "e03": e03_badblocks.run,
    "e04": e04_scsi.run,
    "e05": e05_zones.run,
    "e06": e06_variance.run,
    "e07": e07_unfair.run,
    "e08": e08_transpose.run,
    "e09": e09_deadlock.run,
    "e10": e10_memhog.run,
    "e11": e11_cpuhog.run,
    "e12": e12_dht.run,
    "e13": e13_layout.run,
    "e14": e14_availability.run,
    "e15": e15_cachemask.run,
    "e16": e16_nondeterminism.run,
    "e17": e17_pagecolor.run,
    "e18": e18_membank.run,
    "e19": e19_prediction.run,
    "e20": e20_tlb.run,
    "e21": e21_growth.run,
    "e22": e22_river.run,
    "e23": e23_workload.run,
    "e24": e24_video.run,
    "e25": e25_observer.run,
    "e26": e26_campaign.run,
    "e27": e27_hybrid_scale.run,
    "e28": e28_generative.run,
    "e29": e29_soak.run,
    "a1": a1_notification.run,
    "a2": a2_threshold.run,
    "a3": a3_detectors.run,
    "a4": a4_bookkeeping.run,
    "a5": a5_spec.run,
    "a6": a6_rebuild.run,
    "a7": a7_hedging.run,
}


# Experiments whose multi-seed sweeps can run as structure-of-arrays
# lanes of one repro.sim.batch.SeedBatchRunner.  Each entry produces a
# table bit-identical to its ALL_EXPERIMENTS counterpart (pinned by
# tests/experiments/test_batch_equivalence.py), so callers may substitute
# freely -- including through shared result caches.
BATCH_EXPERIMENTS: Dict[str, Callable[..., Table]] = {
    "e06": e06_variance.run_batch,
    "e14": e14_availability.run_batch,
}


def run_batched(experiment: str, **kwargs) -> Table:
    """Regenerate ``experiment`` through its vectorized seed-batch path.

    Raises :class:`~repro.sim.batch.BatchInfeasible` for experiments with
    no registered batch counterpart, mirroring how the hybrid engine
    refuses scenarios it cannot run exactly -- callers catch it and fall
    back to the scalar path.
    """
    from ..sim.batch import BatchInfeasible

    runner = BATCH_EXPERIMENTS.get(experiment)
    if runner is None:
        raise BatchInfeasible(
            f"experiment {experiment!r} has no seed-batch path "
            f"(batchable: {', '.join(BATCH_EXPERIMENTS) or 'none'})"
        )
    return runner(**kwargs)


def experiment_substrates() -> Dict[str, str]:
    """Map experiment id -> substrate tag ("storage", "cluster", ...).

    Derived from registry metadata: every component class carries a
    ``substrate`` class attribute (the same field
    :meth:`~repro.core.component.ComponentRegistry.by_substrate` groups
    by), so an experiment's tag is the union of the substrates of the
    component classes its module references.  Experiments exercising
    only the generic machinery tag as ``core``.
    """
    tags: Dict[str, str] = {}
    for key, runner in ALL_EXPERIMENTS.items():
        module = sys.modules[runner.__module__]
        found = set()
        for obj in vars(module).values():
            if not inspect.isclass(obj):
                continue
            substrate = getattr(obj, "substrate", None)
            if substrate in SUBSTRATES and substrate != "core":
                found.add(substrate)
        tags[key] = "+".join(sorted(found)) if found else "core"
    return tags


def run_all() -> List[Table]:
    """Regenerate every experiment table, in index order."""
    return [ALL_EXPERIMENTS[key]() for key in ALL_EXPERIMENTS]
