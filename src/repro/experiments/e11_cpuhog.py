"""E11: one CPU-hogged node halves the parallel sort (NOW-Sort).

Section 2.2.2: "The performance of NOW-Sort is quite sensitive to
various disturbances and requires a dedicated system to achieve 'peak'
results.  A node with excess CPU load reduces global sorting performance
by a factor of two."

Compare the four scheduling policies with and without the hog; static
partitioning collapses, pull/hedged recover.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..cluster.interference import CpuHog
from ..cluster.sort import SortConfig, make_sort_cluster, run_sort
from ..sim.engine import Simulator

__all__ = ["run"]


def _one(mode: str, hog_share: float, n_nodes: int, config: SortConfig):
    sim = Simulator()
    nodes = make_sort_cluster(sim, n_nodes)
    if hog_share > 0:
        CpuHog(share=hog_share).attach(sim, nodes[0])
    return sim.run(until=run_sort(sim, nodes, config, mode=mode, hedge_after=5.0))


def run(
    n_nodes: int = 8, total_mb: float = 320.0, chunk_mb: float = 8.0, hog_share: float = 0.5
) -> Table:
    """Regenerate the E11 table: policy x hog sort throughput."""
    config = SortConfig(total_mb=total_mb, chunk_mb=chunk_mb)
    table = Table(
        f"E11: {n_nodes}-node parallel sort, CPU hog (share {hog_share}) on one node",
        ["policy", "hog", "sort MB/s", "slowdown vs healthy static", "hogged-node chunks"],
        note="paper: excess CPU load on one node cuts the global sort ~2x",
    )
    healthy = _one("static", 0.0, n_nodes, config)
    for mode in ("static", "proportional", "pull", "hedged"):
        for hog in (0.0, hog_share):
            result = _one(mode, hog, n_nodes, config)
            table.add_row(
                mode,
                hog > 0,
                result.throughput_mb_s,
                healthy.throughput_mb_s / result.throughput_mb_s,
                result.chunks_per_node[0],
            )
    return table
