"""E19: erratic performance as an early failure indicator (Section 3.3).

"Reliability may also be enhanced through the detection of performance
anomalies, as erratic performance may be an early indicator of
impending failure."

A synthetic fleet: most disks stutter at a constant background rate and
never die; a few wear out -- their stutter rate accelerates until they
fail-stop.  The :class:`~repro.core.prediction.StutterTrendPredictor`
watches episode timestamps only.  Reported: recall (dying disks flagged
before death), precision, mean warning lead time, and the healthy
false-positive count.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Dict, List, Optional, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.prediction import StutterTrendPredictor, score_predictions
from ..sim.random import derive_seed

__all__ = ["run"]


def _healthy_episodes(rate: float, horizon: float, rng: random.Random) -> List[float]:
    times, t = [], 0.0
    while True:
        t += rng.expovariate(rate)
        if t > horizon:
            return times
        times.append(t)


def _wearout_episodes(
    base_rate: float, death_at: float, acceleration: float, rng: random.Random
) -> List[float]:
    """Episode times whose rate ramps as the component approaches death."""
    times, t = [], 0.0
    while True:
        progress = min(1.0, t / death_at)
        rate = base_rate * (1.0 + acceleration * progress**2)
        t += rng.expovariate(rate)
        if t >= death_at:
            return times
        times.append(t)


def _episode_stream(
    point: Tuple[str, Optional[float]],
    base_rate: float,
    acceleration: float,
    horizon: float,
    seed: int,
) -> List[float]:
    """One disk's episode timeline -- an independent, per-point-seeded
    sweep point (``death_at=None`` marks a healthy disk)."""
    name, death_at = point
    rng = random.Random(derive_seed(seed, f"e19/{name}"))
    if death_at is None:
        return _healthy_episodes(base_rate, horizon, rng)
    return _wearout_episodes(base_rate, death_at, acceleration, rng)


def run(
    n_healthy: int = 16,
    n_dying: int = 4,
    base_rate: float = 0.02,
    acceleration: float = 30.0,
    horizon: float = 3000.0,
    seed: int = 41,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E19 table: predictor scores on the synthetic fleet.

    Each disk's episode timeline is seeded independently from its name
    (:func:`derive_seed`), so the fleet's streams are order-independent
    and ``workers`` can generate them in a process pool (``None`` =
    serial, same output).  The predictor feed stays serial: it consumes
    the merged timeline in global order, as a live monitor would.
    """
    predictor = StutterTrendPredictor(
        baseline_rate=base_rate, window=100.0, factor=4.0, min_episodes=5
    )
    death_times: Dict[str, float] = {
        f"dying{i}": random.Random(derive_seed(seed, f"e19/death/dying{i}")).uniform(
            0.5, 0.9
        )
        * horizon
        for i in range(n_dying)
    }
    points: List[Tuple[str, Optional[float]]] = [
        (f"ok{i}", None) for i in range(n_healthy)
    ] + [(f"dying{i}", death_times[f"dying{i}"]) for i in range(n_dying)]
    stream_fn = partial(
        _episode_stream,
        base_rate=base_rate,
        acceleration=acceleration,
        horizon=horizon,
        seed=seed,
    )
    streams: Dict[str, List[float]] = {
        name: episodes
        for (name, _), episodes in parallel_sweep(points, stream_fn, workers=workers)
    }

    # Merge-feed all episodes in global time order (as a monitor would see).
    events = sorted(
        (t, name) for name, times in streams.items() for t in times
    )
    for t, name in events:
        predictor.observe_episode(name, t)

    outcome = score_predictions(
        predictor, death_times, healthy=[f"ok{i}" for i in range(n_healthy)]
    )
    table = Table(
        f"E19: wear-out prediction from stutter trends "
        f"({n_healthy} healthy + {n_dying} dying disks)",
        ["metric", "value"],
        note="paper: erratic performance as an early indicator of "
        "impending failure (Section 3.3, Reliability)",
    )
    table.add_row("dying disks flagged before death", float(outcome.true_positives))
    table.add_row("recall", outcome.recall)
    table.add_row("precision", outcome.precision)
    table.add_row("false positives (healthy flagged)", float(outcome.false_positives))
    table.add_row("mean warning lead time (s)", outcome.mean_lead_time)
    return table
