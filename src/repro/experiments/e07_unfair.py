"""E7: switch unfairness slows a global transfer (Section 2.1.3).

"If enough load is placed on a Myrinet switch, certain routes receive
preference; the result is that the nodes behind disfavored links appear
'slower' to a sender ... the unfairness resulted in a 50% slowdown to a
global adaptive data transfer."

Run the ring global transfer on a loaded switch, fair vs. unfair, and
report the slowdown.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..network.switch import Switch, SwitchConfig
from ..network.transfer import global_transfer
from ..sim.engine import Simulator

__all__ = ["run"]


def _throughput(n_nodes: int, favored, per_node_mb: float, penalty: float) -> float:
    sim = Simulator()
    switch = Switch(
        sim,
        SwitchConfig(
            n_ports=n_nodes,
            port_rate=10.0,
            core_rate=30.0,  # loaded core so arbitration matters
            receiver_rate=10.0,
            buffer_packets=4 * n_nodes,
            unfair_threshold=n_nodes,
            unfair_penalty=penalty,
        ),
        favored_ports=favored,
    )
    result = sim.run(until=global_transfer(sim, switch, per_node_mb=per_node_mb))
    return result.throughput_mb_s


def run(n_nodes: int = 8, per_node_mb: float = 20.0, penalty: float = 0.1) -> Table:
    """Regenerate the E7 table: fair vs unfair global transfer."""
    fair = _throughput(n_nodes, None, per_node_mb, penalty)
    half_favored = _throughput(n_nodes, set(range(n_nodes // 2)), per_node_mb, penalty)
    one_disfavored = _throughput(n_nodes, set(range(n_nodes - 1)), per_node_mb, penalty)
    table = Table(
        f"E7: {n_nodes}-node global transfer under switch unfairness",
        ["switch", "global MB/s", "slowdown vs fair"],
        note="paper: unfairness caused a 50% slowdown of the global transfer",
    )
    table.add_row("fair", fair, 1.0)
    table.add_row("half the ports favored", half_favored, fair / half_favored)
    table.add_row("one port disfavored", one_disfavored, fair / one_disfavored)
    return table
