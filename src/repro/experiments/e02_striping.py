"""E2: striped storage tracks the single slowest disk (Section 1).

"Striping and other RAID techniques perform well if every disk in the
system delivers identical performance; however, if performance of a
single disk is consistently lower than the rest, the performance of the
entire storage system tracks that of the single, slow disk."

Sweep the slow disk's rate factor and compare measured RAID-0 write
throughput to the ``N * b`` track-the-slowest prediction.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid0

__all__ = ["run"]


def _throughput(n_disks: int, rate: float, slow_factor: float, n_blocks: int) -> float:
    sim = Simulator()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disks = [
        Disk(sim, f"d{i}", geometry=uniform_geometry(200_000, rate), params=params)
        for i in range(n_disks)
    ]
    if slow_factor < 1.0:
        disks[0].set_slowdown("skew", slow_factor)
    raid = Raid0(sim, disks)
    done = raid.write_all(range(n_blocks), value=1)
    sim.run(until=done)
    return n_blocks * params.block_size_mb / sim.now


def run(
    n_disks: int = 8,
    rate: float = 5.5,
    slow_factors: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.1),
    n_blocks: int = 512,
) -> Table:
    """Regenerate the E2 table: slow-disk factor vs array throughput."""
    table = Table(
        f"E2: RAID-0 over {n_disks} disks at {rate} MB/s, one disk degraded",
        ["slow factor", "measured MB/s", "N*b prediction", "fraction of healthy"],
        note="the whole array tracks the one slow disk",
    )
    healthy = _throughput(n_disks, rate, 1.0, n_blocks)
    for factor in slow_factors:
        measured = _throughput(n_disks, rate, factor, n_blocks)
        table.add_row(factor, measured, n_disks * rate * factor, measured / healthy)
    return table
