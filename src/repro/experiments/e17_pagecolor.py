"""E17: virtual-memory page placement vs cache misses (Chen & Bershad).

Section 2.2.1: "virtual-memory mapping decisions can reduce application
performance by up to 50% ... the allocation of pages in memory will
affect the cache-miss rate."

Compare a page-colored allocator against many random (first-touch)
allocations of the same working set; report best/median/worst runtime
relative to the colored allocation.
"""

from __future__ import annotations

import random

from ..analysis.report import Table
from ..processor.paging import (
    color_conflicts,
    colored_placement,
    random_placement,
    run_working_set,
)

__all__ = ["run"]


def run(
    n_pages: int = 16,
    cache_pages: int = 16,
    iterations: int = 50,
    n_allocations: int = 30,
    cpu_cycles_per_access: int = 30,
    seed: int = 29,
) -> Table:
    """Regenerate the E17 table: allocator vs relative runtime."""
    colored = run_working_set(colored_placement(n_pages, cache_pages), cache_pages,
                              iterations=iterations)
    colored_app = colored.cycles + colored.accesses * cpu_cycles_per_access

    master = random.Random(seed)
    outcomes = []
    for __ in range(n_allocations):
        placement = random_placement(n_pages, cache_pages,
                                     random.Random(master.randrange(2**32)))
        cost = run_working_set(placement, cache_pages, iterations=iterations)
        app = cost.cycles + cost.accesses * cpu_cycles_per_access
        outcomes.append((app / colored_app, color_conflicts(placement)))
    outcomes.sort()

    table = Table(
        f"E17: page placement for a {n_pages}-page working set on a "
        f"{cache_pages}-color physically-indexed cache",
        ["allocation", "relative runtime", "conflicting pages"],
        note="paper: mapping decisions cost up to 50% of application "
        "performance; page coloring removes the lottery",
    )
    table.add_row("page-colored (bin hopping)", 1.0, 0)
    table.add_row("random: luckiest", outcomes[0][0], outcomes[0][1])
    table.add_row("random: median", outcomes[len(outcomes) // 2][0],
                  outcomes[len(outcomes) // 2][1])
    table.add_row("random: unluckiest", outcomes[-1][0], outcomes[-1][1])
    return table
