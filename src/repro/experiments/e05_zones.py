"""E5: multi-zone geometry -- a factor of two within one disk.

Section 2.1.2 (Van Meter): "disks have multiple zones, with performance
across zones differing by up to a factor of two.  ...unless disks are
treated identically, different disks will have different layouts and
thus different performance characteristics."

Measure streaming bandwidth per zone, then show the layout corollary:
the *same* file placed at different offsets on identical disks reads at
different speeds.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import zoned_geometry
from ..storage.workload import sequential_scan

__all__ = ["run"]


def _zone_scan(
    point: Tuple[int, int],
    outer_rate: float,
    inner_rate: float,
    n_zones: int,
    capacity_blocks: int,
    scan_blocks: int,
) -> float:
    """One zone's streaming scan as an independent simulation.

    Each point builds its own disk (the geometry is a pure function of
    the parameters), so zones can be measured in any order or in
    parallel workers without sharing simulator state.
    """
    index, start = point
    sim = Simulator()
    params = DiskParams(rpm=7200, avg_seek=0.009, block_size_mb=0.5)
    geometry = zoned_geometry(capacity_blocks, outer_rate, inner_rate, n_zones)
    disk = Disk(sim, "zoned", geometry=geometry, params=params)
    blocks = min(scan_blocks, geometry.zones[index].blocks)
    result = sim.run(until=sequential_scan(sim, disk, start=start, nblocks=blocks))
    return result.bandwidth_mb_s


def run(
    outer_rate: float = 11.0,
    inner_rate: float = 5.5,
    n_zones: int = 8,
    capacity_blocks: int = 160_000,
    scan_blocks: int = 4000,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E5 table: per-zone streaming bandwidth.

    The per-zone scans are independent simulations; ``workers`` runs
    them through a process pool (``None`` = serial, same output).
    """
    table = Table(
        f"E5: zoned-disk bandwidth, {n_zones} zones, "
        f"{outer_rate}->{inner_rate} MB/s",
        ["zone", "start lba", "measured MB/s", "zone nominal MB/s"],
        note="paper: outer zones up to 2x the inner zones",
    )
    geometry = zoned_geometry(capacity_blocks, outer_rate, inner_rate, n_zones)
    points, start = [], 0
    for zone in geometry.zones:
        points.append((len(points), start))
        start += zone.blocks
    scan_fn = partial(
        _zone_scan,
        outer_rate=outer_rate,
        inner_rate=inner_rate,
        n_zones=n_zones,
        capacity_blocks=capacity_blocks,
        scan_blocks=scan_blocks,
    )
    for (index, zone_start), bandwidth in parallel_sweep(points, scan_fn, workers=workers):
        table.add_row(index, zone_start, bandwidth, geometry.zones[index].rate)
    outer = table.rows[0][2]
    inner = table.rows[-1][2]
    table.note += f"; measured outer/inner ratio = {outer / inner:.2f}"
    return table
