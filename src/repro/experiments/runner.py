"""Cache-aware, parallel orchestrator for the experiment suite.

``python -m repro.experiments.report`` regenerates 32 tables.  Each one
is a deterministic, independent simulation, which gives the suite two
cheap levers that :func:`run_suite` pulls together:

* **memoization** -- a :class:`~repro.analysis.cache.ResultCache` keyed
  on (experiment id, kwargs, source digest of the experiment's import
  closure) skips every experiment whose inputs haven't changed;
* **process parallelism** -- the cache misses fan out over a
  ``multiprocessing`` pool via
  :func:`~repro.analysis.parallel.parallel_sweep`, one experiment per
  worker task, shipped back as :meth:`Table.to_dict` payloads.  The
  sweep itself decides whether a pool can win: on a one-core machine
  (or when the first miss regenerates faster than pool overhead) the
  misses run in-process instead, so asking for workers never makes the
  report slower.

Output is deterministic at any worker count and any cache state: results
come back in suite order, and a cached table round-trips byte-identically
through :meth:`Table.to_dict`/``from_dict``, so the rendered report never
depends on *how* it was computed.

Experiments that expose their own ``workers=`` knob keep it; the runner
parallelizes *across* experiments and runs each one serially inside its
worker, which avoids nested pools.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.cache import ClosureScan, ResultCache
from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..sim.batch import BatchInfeasible
from . import ALL_EXPERIMENTS, BATCH_EXPERIMENTS, run_batched

__all__ = ["ExperimentRun", "run_suite", "experiment_module"]


@dataclass
class ExperimentRun:
    """One regenerated experiment: its table plus how it was obtained."""

    experiment: str
    table: Table
    cached: bool
    seconds: float  # compute time; 0.0 for a cache hit


def experiment_module(experiment: str) -> str:
    """The module whose import closure keys ``experiment``'s cache entry."""
    return ALL_EXPERIMENTS[experiment].__module__


def _timed_run(experiment: str) -> Tuple[dict, float]:
    """Pool entry point: regenerate one experiment, timing it in-worker.

    Ships the table as its :meth:`Table.to_dict` payload -- plain dicts
    and lists of scalars -- rather than a pickled ``Table``, so the
    result crosses the process boundary through the same round-trip the
    cache already guarantees byte-stable, independent of how ``Table``
    internals pickle.
    """
    start = time.perf_counter()
    table = ALL_EXPERIMENTS[experiment]()
    return table.to_dict(), time.perf_counter() - start


def run_suite(
    experiments: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    batch: bool = False,
) -> List[ExperimentRun]:
    """Regenerate experiments (default: all), in suite order.

    ``workers`` sizes the process pool for the cache misses (``None`` /
    ``0`` / ``1`` = serial in-process); ``cache=None`` disables
    memoization entirely.  ``batch=True`` routes misses with a
    registered seed-batch counterpart (``BATCH_EXPERIMENTS``) through
    :func:`~repro.experiments.run_batched` in-process -- their multi-seed
    sweeps run as vectorized lanes instead of per-run simulations --
    before the remaining misses fan out to the pool.  A batch path that
    raises :class:`~repro.sim.batch.BatchInfeasible` falls back to the
    scalar pool path.  Tables are identical whichever path produced them.
    """
    ids = list(experiments) if experiments is not None else list(ALL_EXPERIMENTS)
    unknown = [key for key in ids if key not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment ids: {', '.join(unknown)} "
            f"(known: {', '.join(ALL_EXPERIMENTS)})"
        )

    runs: Dict[str, ExperimentRun] = {}
    misses: List[str] = []
    keys: Dict[str, str] = {}
    # One scan for the whole key loop: the experiments' import closures
    # overlap almost entirely, so sharing it keeps cache keying O(files)
    # instead of O(experiments x files).
    scan = ClosureScan()
    for key in ids:
        if cache is None:
            misses.append(key)
            continue
        cache_key = cache.key_for(key, experiment_module(key), scan=scan)
        keys[key] = cache_key
        table = cache.get(key, experiment_module(key), key=cache_key)
        if table is None:
            misses.append(key)
        else:
            runs[key] = ExperimentRun(key, table, cached=True, seconds=0.0)

    if batch and misses:
        still_scalar: List[str] = []
        for key in misses:
            if key not in BATCH_EXPERIMENTS:
                still_scalar.append(key)
                continue
            start = time.perf_counter()
            try:
                batched = run_batched(key)
            except BatchInfeasible:
                still_scalar.append(key)
                continue
            seconds = time.perf_counter() - start
            # Same dict round-trip the pool path ships results through,
            # so batch-produced tables are byte-stable with cached ones.
            table = Table.from_dict(batched.to_dict())
            if cache is not None:
                cache.put(key, experiment_module(key), table, key=keys[key])
            runs[key] = ExperimentRun(key, table, cached=False, seconds=seconds)
        misses = still_scalar

    if misses:
        computed = parallel_sweep(misses, _timed_run, workers=workers)
        for key, (payload, seconds) in computed:
            table = Table.from_dict(payload)
            if cache is not None:
                cache.put(key, experiment_module(key), table, key=keys[key])
            runs[key] = ExperimentRun(key, table, cached=False, seconds=seconds)

    return [runs[key] for key in ids]
