"""E26: mitigation policies scored across fault-scenario families.

Section 3's indictment of fail-stop thinking is statistical, not
anecdotal: a timeout that is exactly right for a dead component is
exactly wrong for a merely slow one, and which case you are in varies
across faults.  This experiment runs the full fault campaign
(:mod:`repro.faults.campaign`): seeded scenario *families* -- slowdown
magnitude, correlated pair-wide stutters, pure fail-stops -- swept over
a RAID-10 read workload and a replicated-DHT get workload, each under
all five mitigation policies of :mod:`repro.policy`.

The expected shape of the table:

* ``correlated`` rows: ``stutter-aware`` wins outright -- lower mean and
  p99, fewer SLO violations, and **zero** wasted work, because it keeps
  using the degraded pair at its delivered rate instead of bombarding it
  with timeout duplicates (``fixed-timeout`` wastes ~a third of issued
  work here).
* ``failstop`` rows: all policies agree to within noise -- when a
  component really is dead, the fail-stop reflex was the right call and
  stutter-awareness costs nothing.
* the ``oracle`` column certifies work conservation, no-hang, and
  byte-identical same-seed reruns for every scenario behind each row.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.report import Table
from ..faults.campaign import run_campaign

__all__ = ["run"]


def run(
    seed: int = 7,
    scenarios_per_family: int = 3,
    families: Sequence[str] = ("magnitude", "correlated", "failstop"),
    workloads: Sequence[str] = ("raid10", "dht"),
    n_requests: Optional[int] = None,
    verify_determinism: bool = True,
) -> Table:
    """Regenerate the E26 scorecard: workload x family x policy."""
    result = run_campaign(
        seed=seed,
        workloads=tuple(workloads),
        families=tuple(families),
        scenarios_per_family=scenarios_per_family,
        n_requests=n_requests,
        verify_determinism=verify_determinism,
    )
    return result.table()
