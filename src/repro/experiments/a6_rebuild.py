"""A6: rebuild throttle -- exposure window vs foreground interference.

Section 3.2 scenario 1 mentions "a reconstruction initiated to a hot
spare" as the fail-stop response to an absolute fault.  Under the
fail-stutter lens the rebuild is itself a performance fault on the
surviving member: foreground requests contend with rebuild I/O for the
whole exposure window.  Sweep the throttle and report both sides of the
trade.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid1Pair
from ..storage.reconstruct import Reconstructor

__all__ = ["run"]

PARAMS = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)


def _one(throttle: float, blocks: int, n_probes: int):
    sim = Simulator()
    d1 = Disk(sim, "d1", uniform_geometry(200_000, 5.5), PARAMS)
    d2 = Disk(sim, "d2", uniform_geometry(200_000, 5.5), PARAMS)
    pair = Raid1Pair(sim, d1, d2)
    spare = Disk(sim, "spare", uniform_geometry(200_000, 5.5), PARAMS)
    pair.primary.stop()
    rebuild = Reconstructor(sim, throttle=throttle).rebuild(pair, spare, blocks)

    latencies = []

    def client():
        while not rebuild.triggered and len(latencies) < n_probes:
            yield sim.timeout(1.0)
            start = sim.now
            yield pair.read(100_000, 1)
            latencies.append(sim.now - start)

    sim.process(client())
    result = sim.run(until=rebuild)
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return result.duration, mean_latency


def run(
    throttles: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    blocks: int = 1100,
    n_probes: int = 40,
) -> Table:
    """Regenerate the A6 table: throttle vs exposure and foreground QoS."""
    table = Table(
        "A6: hot-spare rebuild throttle -- redundancy exposure window vs "
        "foreground read latency",
        ["throttle", "exposure window (s)", "mean foreground read (s)"],
        note="unthrottled rebuild minimises the no-redundancy window but "
        "makes the surviving disk performance-faulty for its clients",
    )
    for throttle in throttles:
        duration, latency = _one(throttle, blocks, n_probes)
        table.add_row(throttle, duration, latency)
    return table
