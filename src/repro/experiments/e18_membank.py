"""E18: scalar-vector memory bank interference (Raghavan & Hayes).

Section 2.2.2: "perturbations to a vector reference stream can reduce
memory system efficiency by up to a factor of two."

Sweep the scalar-perturbation probability mixed into a stride-1 vector
stream over interleaved banks; efficiency falls from 1.0 toward ~0.5
and below as scalars collide with busy banks.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..processor.membank import BankedMemory, perturbed_stream, run_stream

__all__ = ["run"]


def run(
    probabilities: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 0.75),
    n_vector: int = 4000,
    n_banks: int = 8,
    bank_busy: int = 8,
    seed: int = 37,
) -> Table:
    """Regenerate the E18 table: perturbation rate vs memory efficiency."""
    table = Table(
        f"E18: vector stream over {n_banks} banks (busy {bank_busy} cycles) "
        "with scalar perturbations",
        ["scalar probability", "efficiency", "loss vs clean"],
        note="paper: perturbations cut memory-system efficiency by up to 2x",
    )
    clean_efficiency = None
    for p in probabilities:
        memory = BankedMemory(n_banks=n_banks, bank_busy=bank_busy)
        stream = perturbed_stream(n_vector, p, n_banks, random.Random(seed))
        result = run_stream(memory, stream)
        if clean_efficiency is None:
            clean_efficiency = result.efficiency
        table.add_row(p, result.efficiency, clean_efficiency / result.efficiency)
    return table
