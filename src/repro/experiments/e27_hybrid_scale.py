"""E27: hybrid fluid/discrete execution -- exactness and million-client scale.

The paper's setting is systems "comprised of ever larger numbers of
components", where the law of large numbers guarantees somebody is
always stuttering.  The discrete campaign engine simulates every request
as heap events, which caps a sweep at ~10^5 requests -- three orders of
magnitude short of the fleet sizes the paper worries about.  The hybrid
engine (:mod:`repro.core.hybrid`) removes that cap: closed-form fluid
fast-forwarding between fault transitions, exact event simulation inside
a window bracketing each transition.

This experiment certifies the trade is free, then uses it:

* **Overlap rows** -- at a size both engines can run, each policy's
  scenario is executed discretely *and* hybrid.  The ``check`` column
  says ``exact`` only if request counts, SLO violations, failure counts
  and work totals match exactly and mean/p99 latency match to float
  noise (1e-9 relative).
* **Scale rows** -- the same scenario shape driven with 10^6 clients,
  hybrid only (a discrete run at this size takes minutes; hybrid takes
  milliseconds).  The ``check`` column reruns the scenario and says
  ``replay-ok`` only if the outcome digest is byte-identical; the
  ``oracle`` column audits work conservation and no-hang exactly as the
  discrete engine's runs are audited.
* **Saturated rows** -- the same certification on the ``surge``
  workload, where arrivals outpace service (~25% sustained overload)
  and the fluid path must reconstruct per-request FIFO queueing delays
  in closed form.  Only timer-free policies are in the exact regime
  there (``no-mitigation`` and ``stutter-aware``); timer-bearing
  policies raise :class:`~repro.core.hybrid.HybridInfeasible` at bind.

No wall-clock columns appear here (EXPERIMENTS.md must be byte-stable);
the timing claim lives in ``scripts/perf_report.py --suite hybrid``,
which records the >= 20x hybrid speedup in BENCH_hybrid.json.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

import numpy as np

from ..analysis.report import Table
from ..core.hybrid import (
    HybridInfeasible,
    run_scenario_hybrid,
    scale_scenario,
    scale_workload,
)
from ..faults import campaign

__all__ = ["run"]

_REL_TOL = 1e-9


def _p99(latencies: Sequence[float]) -> float:
    if not latencies:
        return 0.0
    arr = np.asarray(latencies)
    k = int(0.99 * (arr.size - 1))
    return float(np.partition(arr, k)[k])


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1e-30)


def _matches(d, h) -> bool:
    """Discrete/hybrid equivalence: counts exact, latencies to float noise."""
    if (d.n_requests, d.slo_violations, d.failed_requests) != (
        h.n_requests, h.slo_violations, h.failed_requests
    ):
        return False
    for field in ("issued_work", "completed_work", "claimed_work",
                  "wasted_work", "failed_work"):
        if abs(getattr(d, field) - getattr(h, field)) > _REL_TOL:
            return False
    if len(d.latencies) != len(h.latencies):
        return False
    if d.latencies and not (
        _close(statistics.fmean(d.latencies), statistics.fmean(h.latencies))
        and _close(_p99(d.latencies), _p99(h.latencies))
    ):
        return False
    return True


def _row(table: Table, workload: str, policy: str, outcome,
         engine: str, check: str) -> None:
    n = outcome.n_requests
    mean = statistics.fmean(outcome.latencies) if outcome.latencies else 0.0
    issued = outcome.issued_work
    table.add_row(
        workload,
        policy,
        n,
        engine,
        round(mean, 6),
        round(_p99(outcome.latencies), 6),
        round(100.0 * outcome.slo_violations / n, 4) if n else 0.0,
        round(100.0 * outcome.wasted_work / issued, 4) if issued else 0.0,
        check,
        "ok" if not outcome.violations else "VIOLATION",
    )


def run(
    seed: int = 7,
    family: str = "magnitude",
    overlap_requests: int = 2400,
    scale_requests: int = 1_000_000,
    workloads: Sequence[str] = ("raid10", "dht"),
    policies: Sequence[str] = ("fixed-timeout", "adaptive-timeout",
                               "retry-backoff", "hedged", "stutter-aware"),
    saturated_workloads: Sequence[str] = ("surge",),
    saturated_policies: Sequence[str] = ("no-mitigation", "stutter-aware"),
) -> Table:
    """Regenerate the E27 table: overlap equivalence + million-client scale."""
    table = Table(
        "E27: hybrid fluid/discrete engine -- exact at overlap sizes, "
        "exact and fast at a million clients",
        ["workload", "policy", "clients", "engine", "mean_s", "p99_s",
         "slo_viol_pct", "waste_pct", "check", "oracle"],
        note=(
            "check column: 'exact' = hybrid matches the discrete run "
            "(counts and work identical, mean/p99 within 1e-9 relative); "
            "'replay-ok' = same-seed hybrid rerun is digest-identical.  "
            "Oracle audits work conservation and no-hang on every run.  "
            f"Scenario family: {family!r}, fault extent pinned to the "
            "stock workload span (scale_scenario), so scaling clients "
            "grows the fault-free stretch the fluid fast path covers.  "
            "The 'surge' rows are saturated (arrivals ~25% faster than "
            "service): the fluid path reconstructs FIFO queueing delays "
            "in closed form and hands the backlog across window edges."
        ),
    )
    for name in list(workloads) + list(saturated_workloads):
        cell_policies = saturated_policies if name in saturated_workloads else policies
        stock = campaign.WORKLOADS[name]
        overlap = scale_workload(stock, overlap_requests)
        big = scale_workload(stock, scale_requests)
        overlap_scenario = scale_scenario(overlap, family, seed, 0)
        big_scenario = scale_scenario(big, family, seed, 0)
        for policy in cell_policies:
            discrete = campaign.run_scenario(overlap, overlap_scenario, policy)
            _row(table, name, policy, discrete, "discrete", "--")
            try:
                hybrid = run_scenario_hybrid(overlap, overlap_scenario, policy)
            except HybridInfeasible:
                table.add_row(name, policy, overlap_requests, "hybrid",
                              0.0, 0.0, 0.0, 0.0, "infeasible", "--")
                continue
            _row(table, name, policy, hybrid, "hybrid",
                 "exact" if _matches(discrete, hybrid) else "DIVERGED")
            first = run_scenario_hybrid(big, big_scenario, policy)
            rerun = run_scenario_hybrid(big, big_scenario, policy)
            replay = "replay-ok" if first.digest() == rerun.digest() else "REPLAY-DIFF"
            _row(table, name, policy, first, "hybrid", replay)
    return table
