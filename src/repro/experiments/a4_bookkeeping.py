"""A4: adaptive striping's bookkeeping cost vs robustness (Section 3.2).

"We note that this approach increases the amount of bookkeeping: because
these proportions may change over time, the controller must record where
each block is written.  However, by increasing complexity, we create a
system that is more robust."

Sweep the write size; report, per policy, the location-map entries the
controller had to keep and the throughput retained under a mid-run
fault.  Uniform keeps no map and collapses; adaptive pays D entries and
keeps its throughput.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid1Pair
from ..storage.striping import AdaptiveStriping, UniformStriping

__all__ = ["run"]


def _one(policy, n_blocks: int, n_pairs: int = 4, rate: float = 5.5):
    sim = Simulator()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    pairs = []
    for i in range(n_pairs):
        d1 = Disk(sim, f"d{2*i}", geometry=uniform_geometry(400_000, rate), params=params)
        d2 = Disk(sim, f"d{2*i+1}", geometry=uniform_geometry(400_000, rate), params=params)
        pairs.append(Raid1Pair(sim, d1, d2))
    sim.schedule(1.0, pairs[-1].primary.set_slowdown, "fault", 0.25)
    return sim.run(until=policy.run(sim, pairs, n_blocks, block_value=1))


def run(block_counts: Sequence[int] = (100, 400, 1600)) -> Table:
    """Regenerate the A4 table: blocks vs map size and throughput."""
    table = Table(
        "A4: bookkeeping (location-map entries) vs robustness under a "
        "mid-run fault",
        ["D blocks", "policy", "map entries", "MB/s under fault"],
        note="the map is the price of scenario 3; uniform pays nothing "
        "and collapses to tracking the slow pair",
    )
    for n_blocks in block_counts:
        for name, policy in (("uniform", UniformStriping()), ("adaptive", AdaptiveStriping())):
            result = _one(policy, n_blocks)
            table.add_row(n_blocks, name, result.bookkeeping_entries, result.throughput_mb_s)
    return table
