"""E21: incremental growth and plug-and-play (Section 3.3).

"Such a system can be incrementally grown, allowing newer, faster
components to be added; adding these faster components to incrementally
scale the system is handled naturally, because the older components
simply appear to be performance-faulty versions of the new ones."

Start from an array of old disks and add new-generation disks that are
2x faster.  Uniform striping (the fail-stop illusion: all components
identical) wastes the new capacity -- throughput stays pinned at
N_total * old_rate.  Adaptive striping exploits each disk at its own
speed with zero reconfiguration: true plug-and-play.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid1Pair
from ..storage.striping import AdaptiveStriping, UniformStriping

__all__ = ["run"]

PARAMS = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)


def _mixed_array(sim, n_old: int, n_new: int, old_rate: float, new_rate: float):
    pairs = []
    for i in range(n_old):
        d1 = Disk(sim, f"old{2*i}", uniform_geometry(200_000, old_rate), PARAMS)
        d2 = Disk(sim, f"old{2*i+1}", uniform_geometry(200_000, old_rate), PARAMS)
        pairs.append(Raid1Pair(sim, d1, d2))
    for i in range(n_new):
        d1 = Disk(sim, f"new{2*i}", uniform_geometry(200_000, new_rate), PARAMS)
        d2 = Disk(sim, f"new{2*i+1}", uniform_geometry(200_000, new_rate), PARAMS)
        pairs.append(Raid1Pair(sim, d1, d2))
    return pairs


def _throughput(policy, n_old, n_new, old_rate, new_rate, n_blocks):
    sim = Simulator()
    pairs = _mixed_array(sim, n_old, n_new, old_rate, new_rate)
    result = sim.run(until=policy.run(sim, pairs, n_blocks, block_value=1))
    return result.throughput_mb_s


POLICIES = {"uniform": UniformStriping, "adaptive": AdaptiveStriping}


def _policy_point(
    point: Tuple[int, str], n_old: int, old_rate: float, new_rate: float, n_blocks: int
) -> float:
    """One (added pairs, policy) cell -- an independent simulation; the
    policy is named (not passed as an instance) so the point pickles."""
    n_new, policy_name = point
    return _throughput(POLICIES[policy_name](), n_old, n_new, old_rate, new_rate, n_blocks)


def run(
    n_old: int = 4,
    new_counts: Sequence[int] = (0, 1, 2, 4),
    old_rate: float = 5.5,
    new_rate: float = 11.0,
    n_blocks: int = 600,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E21 table: added fast pairs vs policy throughput.

    The (added pairs, policy) cells are independent simulations;
    ``workers`` runs them through a process pool (``None`` = serial,
    same output).
    """
    table = Table(
        f"E21: incremental growth -- {n_old} old pairs ({old_rate} MB/s) plus "
        f"new pairs at {new_rate} MB/s",
        [
            "new pairs added",
            "uniform MB/s",
            "adaptive MB/s",
            "aggregate capacity",
            "adaptive efficiency",
        ],
        note="uniform striping treats new disks as identical to old ones "
        "and wastes them; adaptive striping is plug-and-play",
    )
    points = [(n_new, name) for n_new in new_counts for name in ("uniform", "adaptive")]
    point_fn = partial(
        _policy_point, n_old=n_old, old_rate=old_rate, new_rate=new_rate, n_blocks=n_blocks
    )
    cells = dict(parallel_sweep(points, point_fn, workers=workers))
    for n_new in new_counts:
        capacity = n_old * old_rate + n_new * new_rate
        uniform = cells[(n_new, "uniform")]
        adaptive = cells[(n_new, "adaptive")]
        table.add_row(n_new, uniform, adaptive, capacity, adaptive / capacity)
    return table
