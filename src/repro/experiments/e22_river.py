"""E22: River's distributed queue vs static partitioning (Section 4).

River (the authors' system, cited as the starting point for fail-stutter
storage): its distributed queue routes records to consumers by credit so
that "consistent and high performance" survives "erratic performance in
underlying components."

Sweep one consumer's perturbation factor; static hash partitioning
tracks the slow consumer while the credit DQ degrades only by the
capacity actually lost.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.river import DistributedQueue
from ..faults.component import DegradableServer
from ..sim.engine import Simulator

__all__ = ["run"]


def _drain_throughput(policy: str, factor: float, n_consumers: int, n_records: int):
    sim = Simulator()
    consumers = [DegradableServer(sim, f"c{i}", 1.0) for i in range(n_consumers)]
    if factor < 1.0:
        consumers[0].set_slowdown("perturb", factor)
    backlog = 2 if policy == "credit" else None
    dq = DistributedQueue(sim, consumers, policy=policy, max_backlog=backlog)
    result = sim.run(until=dq.drain([f"k{i}" for i in range(n_records)]))
    return result.throughput


def _factor_point(
    factor: float, n_consumers: int, n_records: int
) -> Tuple[float, float]:
    """One perturbation-factor sweep point: (hash, credit) throughputs."""
    hash_tp = _drain_throughput("hash", factor, n_consumers, n_records)
    credit_tp = _drain_throughput("credit", factor, n_consumers, n_records)
    return hash_tp, credit_tp


def run(
    factors: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
    n_consumers: int = 4,
    n_records: int = 120,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E22 table: perturbation vs DQ/hash throughput.

    Each perturbation factor is an independent pair of simulations, so
    ``workers`` distributes the factor sweep over a process pool with
    identical table output (``None`` = serial).
    """
    table = Table(
        f"E22: distributed queue vs static partitioning, {n_consumers} "
        "consumers, one perturbed",
        [
            "consumer factor",
            "hash rec/s",
            "credit DQ rec/s",
            "ideal capacity rec/s",
            "DQ efficiency",
        ],
        note="River's shape: the DQ loses only the perturbed capacity; "
        "static partitioning tracks the slow consumer",
    )
    point_fn = partial(_factor_point, n_consumers=n_consumers, n_records=n_records)
    for factor, (hash_tp, credit_tp) in parallel_sweep(factors, point_fn, workers=workers):
        capacity = (n_consumers - 1) + factor
        table.add_row(factor, hash_tp, credit_tp, capacity, credit_tp / capacity)
    return table
