"""E29: soak campaign -- rolling-window detection of a mid-soak stutter.

Section 5's research agenda asks how operators *notice* performance
faults in deployed systems: "environmental conditions are difficult to
control" and a fault can arrive hours into an otherwise healthy run.
This experiment drives the production-observability loop end to end: a
long-horizon soak campaign (:func:`repro.faults.campaign.run_soak`) on
the hybrid engine at a million clients per window, a *quiet* baseline
(no random injectors), and one designated correlated stutter planted
mid-soak on mirror pair ``d0``/``d1`` under the ``no-mitigation``
policy -- the fail-oblivious strawman, so the fault shows up in the
latency tail instead of being routed around.

What the table shows: the per-window and rolling scorecards (the
PR-3/PR-7 streaming statistics, merged across trailing windows exactly
as a production dashboard would) stay flat through the quiet windows,
then flag the onset window -- the ``flagged`` column is driven purely
by the rolling SLO-violation count crossing zero.  The note reports
the **detection latency**: the gap between the stutter's global onset
time and the end of the first flagged window, i.e. how long a
window-granularity rolling monitor takes to surface a stutter embedded
in ~50 virtual hours of healthy traffic.  Memory stays O(windows
retained) no matter the horizon; ``scripts/perf_report.py --suite
soak`` gates the RSS-flatness claim.
"""

from __future__ import annotations

from dataclasses import replace

from ..analysis.report import Table
from ..faults.campaign import WORKLOADS, FaultEvent, run_soak

__all__ = ["run"]


def run(
    seed: int = 7,
    n_windows: int = 6,
    onset_window: int = 3,
    n_requests: int = 1_000_000,
    rolling: int = 3,
    stutter_factor: float = 0.05,
    engine: str = "hybrid",
) -> Table:
    """Regenerate the E29 soak-detection table."""
    if not 0 <= onset_window < n_windows:
        raise ValueError(
            f"onset_window {onset_window} outside soak windows 0..{n_windows - 1}"
        )
    workload = replace(WORKLOADS["raid10"], n_requests=n_requests)
    span = workload.horizon
    # Mid-window onset, deep correlated stutter on one whole mirror pair:
    # with both replicas slowed to stutter_factor of nominal, service
    # time blows past the 12x SLO and no routing choice can hide it.
    onset_local = 0.5 * workload.span
    duration = 60.0 * workload.expected_service
    stutter = [
        (onset_window, FaultEvent(member, "stutter", onset=onset_local,
                                  duration=duration, factor=stutter_factor))
        for member in ("d0", "d1")
    ]
    result = run_soak(
        seed=seed,
        workload=workload,
        family="magnitude",
        policy="no-mitigation",
        n_windows=n_windows,
        injectors_per_window=0,  # quiet baseline: only the planted stutter
        engine=engine,
        rolling=rolling,
        extra_events=stutter,
        retain_windows=True,
    )
    onset_global = onset_window * span + onset_local
    flagged = next(
        (w for w in result.windows if w.rolling_slo_violations > 0), None
    )
    table = Table(
        f"E29: mid-soak stutter onset vs rolling-window detection "
        f"({result.engine}, seed {seed}, {n_requests} clients/window, "
        f"{result.horizon / 3600.0:.0f}h virtual)",
        [
            "window", "start_h", "requests", "injectors", "mean_s",
            "roll_p99_s", "roll_slo_viol", "flagged", "oracle",
        ],
    )
    for w in result.windows:
        table.add_row(
            w.index,
            w.start / 3600.0,
            w.requests,
            w.injectors,
            w.moments.mean if w.moments.count else 0.0,
            w.rolling_p99,
            w.rolling_slo_violations,
            ("ONSET" if flagged is not None and w.index == flagged.index
             else ""),
            "ok" if not w.violations else f"VIOLATED({len(w.violations)})",
        )
    if flagged is not None:
        latency = flagged.end - onset_global
        detection = (
            f"stutter onset at t={onset_global:.0f}s (window {onset_window}, "
            f"{onset_global / 3600.0:.1f}h in); first flagged rolling "
            f"scorecard is window {flagged.index}, giving a detection "
            f"latency of {latency:.0f}s ({latency / 3600.0:.2f}h) at "
            "window granularity"
        )
    else:
        detection = (
            f"stutter onset at t={onset_global:.0f}s was NOT flagged by the "
            "rolling scorecard -- detection failed"
        )
    table.note = (
        "Quiet soak baseline (no random injectors) with one correlated "
        f"stutter planted on mirror pair d0/d1 (factor {stutter_factor}, "
        f"{duration:.1f}s) under the no-mitigation policy.  roll_* columns "
        f"merge the trailing {rolling} windows via StreamingMoments.merge / "
        f"P2Quantile.combine.  {detection}."
    )
    return table
