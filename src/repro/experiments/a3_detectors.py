"""A3: detector choice -- detection latency vs false positives.

Three detectors watch a component that (a) emits noisy-but-healthy
completions, then (b) degrades persistently.  Measured per detector:
false positives during the noisy-healthy phase, and how many
observations after the true fault until it is flagged.

Wiring: the watched component is registered with a
:class:`~repro.core.system.System` and every observation goes out as a
``completion`` record on the telemetry bus; detectors subscribe to the
component's stream by name (``sim.watch``/``subscribe``) rather than
being hand-fed -- the same plumbing any experiment gets for free.
"""

from __future__ import annotations

import random

from ..analysis.report import Table
from ..core.detection import EwmaDetector, PeerComparisonDetector, ThresholdDetector
from ..core.estimator import WindowedRateEstimator
from ..core.system import System
from ..faults.component import DegradableServer
from ..faults.spec import PerformanceSpec

__all__ = ["run"]

SPEC = PerformanceSpec(nominal_rate=10.0, tolerance=0.2)


def _observation_stream(rng: random.Random, n_healthy: int, n_faulty: int,
                        noise: float, fault_factor: float):
    """Yield (phase, rate) observations: noisy-healthy then degraded."""
    for __ in range(n_healthy):
        yield "healthy", max(0.1, rng.gauss(10.0, noise))
    for __ in range(n_faulty):
        yield "faulty", max(0.05, rng.gauss(10.0 * fault_factor, noise * fault_factor))


def _spec_detector_run(detector, observations):
    sim = System()
    DegradableServer(sim, "victim", SPEC.nominal_rate, spec=SPEC)
    # The detector subscribes to the victim's telemetry stream by name.
    binding = sim.watch("victim", detector)
    false_positives = 0
    detection_after = None
    faulty_seen = 0
    for phase, rate in observations:
        sim.telemetry.completion("victim", rate, 1.0)  # rate units of work in 1 s
        if phase == "healthy" and binding.faulty:
            false_positives += 1
        if phase == "faulty":
            faulty_seen += 1
            if detection_after is None and binding.faulty:
                detection_after = faulty_seen
    return false_positives, detection_after


def _peer_detector_run(fraction, observations, rng, n_peers=7):
    sim = System()
    DegradableServer(sim, "victim", SPEC.nominal_rate, spec=SPEC)
    for p in range(n_peers):
        DegradableServer(sim, f"peer{p}", SPEC.nominal_rate, spec=SPEC)
    detector = PeerComparisonDetector(fraction=fraction, min_peers=3)
    est = WindowedRateEstimator(window=8)

    # Peer comparison consumes per-component rates, so each component's
    # completion stream feeds the detector under its own name.
    def feed_victim(record):
        work, duration = record.detail
        est.observe(work, duration)
        detector.observe("victim", est.rate())

    sim.telemetry.subscribe("victim", feed_victim)
    for p in range(n_peers):
        name = f"peer{p}"
        sim.telemetry.subscribe(
            name,
            lambda record, name=name: detector.observe(
                name, record.detail[0] / record.detail[1]
            ),
        )

    false_positives = 0
    detection_after = None
    faulty_seen = 0
    for phase, rate in observations:
        sim.telemetry.completion("victim", rate, 1.0)
        for p in range(n_peers):
            sim.telemetry.completion(f"peer{p}", max(0.1, rng.gauss(10.0, 1.0)), 1.0)
        if phase == "healthy" and detector.is_faulty("victim"):
            false_positives += 1
        if phase == "faulty":
            faulty_seen += 1
            if detection_after is None and detector.is_faulty("victim"):
                detection_after = faulty_seen
    return false_positives, detection_after


def run(
    n_healthy: int = 200,
    n_faulty: int = 60,
    noise: float = 2.0,
    fault_factor: float = 0.5,
    seed: int = 31,
) -> Table:
    """Regenerate the A3 table: detector vs FP count and detection lag."""
    table = Table(
        "A3: detector comparison on a noisy component that degrades to "
        f"{fault_factor:.0%} of spec",
        ["detector", "false positives (healthy phase)", "observations to detect"],
        note="window/alpha trade detection speed against noise immunity",
    )

    configs = [
        ("threshold, window=2", lambda: ThresholdDetector(SPEC, WindowedRateEstimator(2))),
        ("threshold, window=16", lambda: ThresholdDetector(SPEC, WindowedRateEstimator(16))),
        ("ewma, alpha=0.5", lambda: EwmaDetector(SPEC, alpha=0.5)),
        ("ewma, alpha=0.1", lambda: EwmaDetector(SPEC, alpha=0.1)),
    ]
    for label, factory in configs:
        rng = random.Random(seed)
        fp, lag = _spec_detector_run(
            factory(),
            _observation_stream(rng, n_healthy, n_faulty, noise, fault_factor),
        )
        table.add_row(label, fp, lag if lag is not None else float("inf"))

    rng = random.Random(seed)
    fp, lag = _peer_detector_run(
        0.7,
        _observation_stream(rng, n_healthy, n_faulty, noise, fault_factor),
        random.Random(seed + 1),
    )
    table.add_row("peer-median, fraction=0.7", fp, lag if lag is not None else float("inf"))
    return table
