"""A7: the hedging threshold -- completion time vs wasted work.

Section 4 credits Shasha & Turek with slow-down tolerance "by simply
issuing new processes to do the work elsewhere, and reconciling properly
so as to avoid work replication."  The open design choice is *when* to
issue the duplicate: hedge too eagerly and healthy runs drown in wasted
copies; hedge too lazily and stragglers dominate completion time.

Sweep ``hedge_after`` on a pool with one intermittently stalling worker
and report both sides: makespan and duplicates/wasted completions.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.hedging import HedgingScheduler
from ..faults.component import DegradableServer
from ..sim.engine import Simulator

__all__ = ["run"]

import random


def _one(hedge_after, n_tasks: int, n_workers: int, seed: int):
    sim = Simulator()
    workers = [DegradableServer(sim, f"w{i}", 1.0) for i in range(n_workers)]
    # One worker degrades severely shortly into the run.
    sim.schedule(2.0, workers[-1].set_slowdown, "wedge", 0.05)
    # Heterogeneous task sizes: an eager threshold cannot tell a big
    # healthy task from a stalled one, so it burns duplicates on both.
    rng = random.Random(seed)
    tasks = [rng.uniform(0.5, 3.0) for __ in range(n_tasks)]
    scheduler = HedgingScheduler(hedge_after=hedge_after)
    result = sim.run(
        until=scheduler.run(
            sim, tasks, n_workers, lambda w, t: workers[w].submit(t)
        )
    )
    return result


def _point(
    threshold: float, n_tasks: int, n_workers: int, seed: int
) -> Tuple[float, int, int]:
    """One threshold's (makespan, duplicates, wasted) -- an independent
    simulation returning plain scalars so it ships cheaply from a worker."""
    result = _one(threshold, n_tasks, n_workers, seed)
    return result.duration, result.duplicates_launched, result.wasted_completions


def run(
    thresholds: Sequence[float] = (1.2, 2.0, 4.0, 8.0, 1e6),
    n_tasks: int = 48,
    n_workers: int = 4,
    seed: int = 67,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the A7 table: hedge threshold vs makespan and waste.

    The per-threshold points are independent simulations; ``workers``
    runs them through a process pool (``None`` = serial, same output).
    """
    table = Table(
        "A7: hedge-after threshold -- heterogeneous tasks, one worker "
        "wedging mid-run",
        ["hedge after (s)", "makespan (s)", "duplicates", "wasted completions"],
        note="eager hedging burns duplicate work; lazy hedging (1e6 = "
        "disabled) lets the straggler set the completion time",
    )
    point_fn = partial(_point, n_tasks=n_tasks, n_workers=n_workers, seed=seed)
    for threshold, (duration, duplicates, wasted) in parallel_sweep(
        thresholds, point_fn, workers=workers
    ):
        table.add_row(threshold, duration, duplicates, wasted)
    return table
