"""E12: GC pauses make one DHT node fall behind its mirror (Gribble).

Section 2.2.1: "untimely garbage collection causes one node to fall
behind its mirror in a replicated update.  The result is that one
machine over-saturates and thus is the bottleneck."

Compare put latency under: no GC; GC with hashed placement; GC with
adaptive (fail-stutter) placement of new keys.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..cluster.dht import ReplicatedDht
from ..core.system import System
from ..faults.library import PeriodicBackground
from ..sim.metrics import LatencyRecorder

__all__ = ["run"]


def _drive(sim, dht, n_ops: int, gap: float, reuse: float, seed: int) -> LatencyRecorder:
    """Insert-heavy stream (the DDS workload): mostly new keys, some reuse."""
    rng = random.Random(seed)
    recorder = LatencyRecorder()

    def one(key):
        latency = yield dht.put(key)
        recorder.record(latency)

    def source():
        for i in range(n_ops):
            if rng.random() < reuse and i > 0:
                key = f"k{rng.randrange(i)}"
            else:
                key = f"k{i}"
            sim.process(one(key))
            yield sim.timeout(gap)

    sim.process(source())
    sim.run(until=max(1000.0, n_ops * gap * 20))
    return recorder


def _one(gc: bool, placement: str, n_ops: int, gap: float, seed: int) -> LatencyRecorder:
    sim = System()
    ReplicatedDht(sim, n_pairs=4, brick_rate=100.0, op_work=1.0, placement=placement)
    dht = sim.components.get("dht")
    if gc:
        # Registry wiring: the GC pause lands on the brick by name.
        sim.inject("brick0", PeriodicBackground(period=5.0, duration=1.0, factor=0.0))
    # Insert-only, as in the DDS write benchmark: adaptive placement can
    # steer every key, so the contrast with hashing is the policy's full
    # effect.  (Keys already resident on the GC'd pair cannot move; any
    # reuse fraction dilutes the benefit accordingly.)
    return _drive(sim, dht, n_ops, gap, reuse=0.0, seed=seed)


def _config_point(
    point: Tuple[bool, str], n_ops: int, gap: float, seed: int
) -> Tuple[float, float, float]:
    """One configuration's (p50, p99, max) -- an independent simulation,
    returning plain floats so the result ships cheaply from a worker."""
    gc, placement = point
    summary = _one(gc, placement, n_ops, gap, seed).summary()
    return summary.p50, summary.p99, summary.maximum


CONFIGURATIONS = (
    ("no GC, hashed", False, "hash"),
    ("GC, hashed", True, "hash"),
    ("GC, adaptive placement", True, "adaptive"),
)


def run(n_ops: int = 800, gap: float = 0.02, seed: int = 3,
        workers: Optional[int] = None) -> Table:
    """Regenerate the E12 table: GC x placement put latency.

    The three configurations are independent simulations; ``workers``
    runs them through a process pool (``None`` = serial, same output).
    """
    table = Table(
        "E12: replicated DHT put latency under stop-the-world GC on one brick",
        ["configuration", "p50 (s)", "p99 (s)", "max (s)"],
        note="paper: the GC'd node falls behind its mirror and saturates; "
        "adaptive placement of new keys limits the damage",
    )
    points = [(gc, placement) for _, gc, placement in CONFIGURATIONS]
    point_fn = partial(_config_point, n_ops=n_ops, gap=gap, seed=seed)
    results = parallel_sweep(points, point_fn, workers=workers)
    for (label, _, __), (___, (p50, p99, maximum)) in zip(CONFIGURATIONS, results):
        table.add_row(label, p50, p99, maximum)
    return table
