"""A2: choosing the correctness threshold T (Section 3.1).

"To distinguish the two cases, the model may include a performance
threshold within the definition of a correctness fault, i.e., if the
disk request takes longer than T seconds to service, consider it
absolutely failed."

The tension: a low T kills slow-but-working components (wasting their
capacity -- the paper's explicit warning), while a high T leaves
requests pinned to a truly wedged component.  The pool here has one 4x
slow server (should be kept) and one fully stalled server (should be
killed); sweep T and measure availability and how many servers end up
fail-stopped.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional, Sequence

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.system import FailStutterSystem, WeightedRouter
from ..faults.component import DegradableServer
from ..faults.spec import PerformanceSpec
from ..sim.engine import Simulator
from ..sim.metrics import AvailabilityMeter

__all__ = ["run"]


def _one(t_value: float, n_servers: int, n_requests: int, gap: float, slo: float,
         seed: int):
    sim = Simulator()
    spec = PerformanceSpec(nominal_rate=10.0, tolerance=0.2, correctness_timeout=t_value)
    servers = [DegradableServer(sim, f"s{i}", 10.0) for i in range(n_servers)]
    system = FailStutterSystem(sim, servers, spec, router=WeightedRouter(), use_watchdog=True)
    servers[-1].set_slowdown("slow", 0.25)  # slow but working: keep it
    sim.schedule(1.0, servers[-2].set_slowdown, "wedge", 0.0)  # dead: kill it

    meter = AvailabilityMeter(slo=slo)
    rng = random.Random(seed)

    def one():
        issued = sim.now
        try:
            yield system.submit(1.0)
        except Exception:
            meter.record(None)
            return
        meter.record(sim.now - issued)

    def source():
        for __ in range(n_requests):
            sim.process(one())
            yield sim.timeout(rng.expovariate(1.0 / gap))

    sim.process(source())
    sim.run(until=n_requests * gap * 20)
    while meter.offered < n_requests:
        meter.record(None)
    killed = sum(1 for s in servers if s.stopped)
    slow_killed = servers[-1].stopped
    return meter.availability(), killed, slow_killed


def run(
    t_values: Sequence[float] = (0.3, 1.0, 3.0, 10.0, 60.0),
    n_servers: int = 4,
    n_requests: int = 400,
    gap: float = 0.06,
    slo: float = 0.6,
    seed: int = 23,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the A2 table: T vs availability and promotions.

    The per-threshold points are independent simulations; ``workers``
    runs them through a process pool (``None`` = serial, same output).
    """
    table = Table(
        "A2: correctness threshold T -- one 4x-slow server (keep) + one "
        "wedged server (kill)",
        ["T (s)", "availability", "servers fail-stopped", "slow server killed"],
        note="low T wastes the working-but-slow server; high T strands "
        "requests on the wedged one",
    )
    point_fn = partial(
        _one, n_servers=n_servers, n_requests=n_requests, gap=gap, slo=slo, seed=seed
    )
    for t_value, (availability, killed, slow_killed) in parallel_sweep(
        t_values, point_fn, workers=workers
    ):
        table.add_row(t_value, availability, killed, slow_killed)
    return table
