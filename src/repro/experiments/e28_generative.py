"""E28: generative scenario sweeps under the universal invariant oracle.

The campaign experiments (E26, E27) argue over *curated* scenarios:
three workloads and five fault families a human wired up.  The paper's
thesis is broader -- fail-stutter behaviour matters across every
substrate and workload shape -- and Zhou et al.'s formal framework
(PAPERS.md) shows how to earn that breadth: make fault scenarios
first-class data and sweep machine-generated ones against a universal
correctness oracle.  This experiment does exactly that with the
:mod:`repro.scenario` stack: ``count`` scenarios are drawn from seeded
bounds (random substrate, replica-group topology, rates, open-loop
arrival schedule, stutter/fail-stop schedule, policy binding), compiled
to the same engine objects the curated experiments use, and every run
is audited by the :class:`~repro.faults.campaign.InvariantOracle` --
work conservation, no-hang at the horizon, byte-identical same-seed
reruns.

The expected shape of the table: every row's ``oracle`` column says
``ok`` on both engines, the discrete and hybrid rows agree on request
counts and failure counts per policy, and the sweep digest printed in
the note is replay-stable -- the machinery, not any particular
scenario, is what is being certified.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..scenario import run_sweep

__all__ = ["run"]


def run(
    seed: int = 7,
    count: int = 100,
    engines: tuple = ("discrete", "hybrid"),
    verify_determinism: bool = True,
) -> Table:
    """Regenerate the E28 scorecard: engine x policy over generated scenarios."""
    table = Table(
        f"E28: generative sweep, {count} machine-generated scenarios "
        f"(seed {seed})",
        [
            "engine", "policy", "scenarios", "hybrid_runs", "requests",
            "mean_s", "p99_s", "slo_viol_pct", "waste_pct", "failed_pct",
            "oracle", "sweep_digest",
        ],
        note=(
            "Scenarios are drawn from SweepBounds (random substrate, "
            "topology, rates, fault schedule, policy); the invariant "
            "oracle is the universal pass/fail.  hybrid-ineligible "
            "scenarios fall back to the discrete oracle by name; the "
            "sweep digest is replay-stable per engine."
        ),
    )
    for engine in engines:
        result = run_sweep(seed=seed, count=count, engine=engine,
                           verify_determinism=verify_determinism)
        digest = result.digest()[:12]
        for row in result.table().rows:
            table.add_row(engine, *row, digest)
    return table
