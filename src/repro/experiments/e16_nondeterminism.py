"""E16: run-to-run nondeterminism on one processor (Kushman).

Section 2.1.1: "Simple code snippets are shown to exhibit
non-deterministic performance -- a program, executed twice on the same
processor under identical conditions, has run times that vary by up to
a factor of three."

The model: a constant-dispatch snippet through a sticky next-field
predictor whose initial table state is whatever the previous workload
left behind (random per run).  Lucky initial state: every dispatch
predicted.  Unlucky: every dispatch mispredicted, forever.  Nothing
in the program differs between runs.

Each run is an *independent* trial: its predictor state is seeded per
run (:func:`~repro.sim.random.derive_seed`) rather than drawn from one
shared master stream, so runs can execute in any order -- or in parallel
workers -- and still render byte-identically.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..processor.predictor import NextFieldPredictor, run_snippet
from ..sim.random import derive_seed

__all__ = ["run"]


def _one_run(
    run_index: int,
    n_dispatches: int,
    mispredict_penalty: int,
    target_space: int,
    seed: int,
) -> int:
    """Cycle count of one benchmark repetition (independent sweep point)."""
    snippet = [(0, 5)] * n_dispatches  # the same program, every run
    predictor = NextFieldPredictor(
        4,
        random.Random(derive_seed(seed, f"e16/run/{run_index}")),
        update="sticky",
        target_space=target_space,
    )
    result = run_snippet(
        predictor, snippet, base_cycles=1, mispredict_penalty=mispredict_penalty
    )
    return result.cycles


def run(
    n_runs: int = 50,
    n_dispatches: int = 2000,
    mispredict_penalty: int = 2,
    target_space: int = 8,
    seed: int = 19,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E16 table: run-time distribution across runs.

    ``workers`` fans the independent runs out over a process pool
    (``None`` = serial, same output).
    """
    run_fn = partial(
        _one_run,
        n_dispatches=n_dispatches,
        mispredict_penalty=mispredict_penalty,
        target_space=target_space,
        seed=seed,
    )
    runtimes = [cycles for _, cycles in parallel_sweep(range(n_runs), run_fn, workers=workers)]
    fast = min(runtimes)
    slow = max(runtimes)
    slow_runs = sum(1 for r in runtimes if r == slow)
    table = Table(
        f"E16: one program, {n_runs} runs, 'identical conditions' "
        "(sticky next-field predictor, random initial state)",
        ["statistic", "value"],
        note="paper: run times vary by up to a factor of three "
        "(runs reseeded per-run for parallel execution)",
    )
    table.add_row("fastest run (cycles)", float(fast))
    table.add_row("slowest run (cycles)", float(slow))
    table.add_row("slow/fast ratio", slow / fast)
    table.add_row("slow runs out of all", float(slow_runs))
    table.add_row("distinct runtimes", float(len(set(runtimes))))
    return table
