"""E16: run-to-run nondeterminism on one processor (Kushman).

Section 2.1.1: "Simple code snippets are shown to exhibit
non-deterministic performance -- a program, executed twice on the same
processor under identical conditions, has run times that vary by up to
a factor of three."

The model: a constant-dispatch snippet through a sticky next-field
predictor whose initial table state is whatever the previous workload
left behind (random per run).  Lucky initial state: every dispatch
predicted.  Unlucky: every dispatch mispredicted, forever.  Nothing
in the program differs between runs.
"""

from __future__ import annotations

import random

from ..analysis.report import Table
from ..processor.predictor import NextFieldPredictor, run_snippet

__all__ = ["run"]


def run(
    n_runs: int = 50,
    n_dispatches: int = 2000,
    mispredict_penalty: int = 2,
    target_space: int = 8,
    seed: int = 19,
) -> Table:
    """Regenerate the E16 table: run-time distribution across runs."""
    snippet = [(0, 5)] * n_dispatches  # the same program, every run
    master = random.Random(seed)
    runtimes = []
    for __ in range(n_runs):
        predictor = NextFieldPredictor(
            4,
            random.Random(master.randrange(2**32)),
            update="sticky",
            target_space=target_space,
        )
        result = run_snippet(
            predictor, snippet, base_cycles=1, mispredict_penalty=mispredict_penalty
        )
        runtimes.append(result.cycles)
    fast = min(runtimes)
    slow = max(runtimes)
    slow_runs = sum(1 for r in runtimes if r == slow)
    table = Table(
        f"E16: one program, {n_runs} runs, 'identical conditions' "
        "(sticky next-field predictor, random initial state)",
        ["statistic", "value"],
        note="paper: run times vary by up to a factor of three",
    )
    table.add_row("fastest run (cycles)", float(fast))
    table.add_row("slowest run (cycles)", float(slow))
    table.add_row("slow/fast ratio", slow / fast)
    table.add_row("slow runs out of all", float(slow_runs))
    table.add_row("distinct runtimes", float(len(set(runtimes))))
    return table
