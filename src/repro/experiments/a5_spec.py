"""A5: spec fidelity -- simple vs load-aware specifications (Section 3.1).

"At one extreme, a model of component performance could be as simple as
possible: 'this disk delivers bandwidth at 10 MB/s.'  However, the
simpler the model, the more likely performance faults occur."

A component legitimately delivers less under load (cache pressure,
queueing).  The simple spec flags those load dips as performance faults;
the banded (load-aware) spec does not, while both catch a real fault.
Report nominal-fault counts under each spec.
"""

from __future__ import annotations

import random

from ..analysis.report import Table
from ..faults.spec import BandedSpec, PerformanceSpec

__all__ = ["run"]


def run(
    n_observations: int = 500,
    rate_idle: float = 10.0,
    rate_saturated: float = 6.5,
    tolerance: float = 0.1,
    real_fault_factor: float = 0.4,
    seed: int = 13,
) -> Table:
    """Regenerate the A5 table: spec type vs flagged faults."""
    simple = PerformanceSpec(nominal_rate=rate_idle, tolerance=tolerance)
    banded = BandedSpec(
        rate_at_idle=rate_idle, rate_at_saturation=rate_saturated, tolerance=tolerance
    )
    rng = random.Random(seed)

    healthy_flags_simple = 0
    healthy_flags_banded = 0
    fault_caught_simple = 0
    fault_caught_banded = 0
    n_fault_obs = n_observations // 5

    # Healthy phase: rate tracks load legitimately.
    for __ in range(n_observations):
        utilization = rng.random()
        true_rate = rate_idle + (rate_saturated - rate_idle) * utilization
        observed = max(0.1, rng.gauss(true_rate, 0.3))
        if simple.is_performance_fault(observed):
            healthy_flags_simple += 1
        if banded.is_performance_fault(observed, utilization):
            healthy_flags_banded += 1

    # Real fault phase: the component underruns even the banded model.
    for __ in range(n_fault_obs):
        utilization = rng.random()
        true_rate = (rate_idle + (rate_saturated - rate_idle) * utilization) * real_fault_factor
        observed = max(0.05, rng.gauss(true_rate, 0.3))
        if simple.is_performance_fault(observed):
            fault_caught_simple += 1
        if banded.is_performance_fault(observed, utilization):
            fault_caught_banded += 1

    table = Table(
        "A5: spec fidelity -- nominal performance faults flagged",
        [
            "spec",
            "healthy observations flagged",
            "healthy flag rate",
            "real-fault observations flagged",
        ],
        note="the simple spec turns legitimate load dips into 'faults'; "
        "both specs catch the real degradation",
    )
    table.add_row(
        "simple (nominal 10 MB/s)",
        healthy_flags_simple,
        healthy_flags_simple / n_observations,
        fault_caught_simple,
    )
    table.add_row(
        "banded (load-aware)",
        healthy_flags_banded,
        healthy_flags_banded / n_observations,
        fault_caught_banded,
    )
    return table
