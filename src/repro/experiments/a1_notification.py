"""A1: notification policy -- traffic vs adaptation lag (Section 3.1).

The paper: broadcasting every performance fault "may be overly
expensive", but persistent faults should be exported.  Drive a registry
with one flapping component and one persistently degraded component and
measure, per policy: messages pushed, and how long the subscriber took
to learn about the *persistent* fault (the adaptation lag; for the NONE
policy the subscriber polls at a fixed interval).
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.registry import NotificationPolicy, PerformanceStateRegistry
from ..faults.model import ComponentState
from ..sim.engine import Simulator

__all__ = ["run"]


def _drive(policy: NotificationPolicy, persistence: float, poll_interval: float,
           flap_period: float, persistent_at: float, horizon: float):
    sim = Simulator()
    registry = PerformanceStateRegistry(sim, policy=policy, persistence_time=persistence)
    learned_at = []

    def subscriber(report):
        if report.component == "steady" and report.state is ComponentState.DEGRADED:
            if not learned_at:
                learned_at.append(sim.now)

    registry.subscribe(subscriber)

    if policy is NotificationPolicy.NONE:
        def poller():
            while not learned_at:
                yield sim.timeout(poll_interval)
                if "steady" in registry.degraded_components():
                    learned_at.append(sim.now)

        sim.process(poller())

    def flapper():
        while sim.now < horizon - flap_period:
            registry.report("flappy", ComponentState.DEGRADED, 0.5)
            yield sim.timeout(flap_period / 2)
            registry.report("flappy", ComponentState.OK, 1.0)
            yield sim.timeout(flap_period / 2)

    def steady_fault():
        yield sim.timeout(persistent_at)
        registry.report("steady", ComponentState.DEGRADED, 0.3)

    sim.process(flapper())
    sim.process(steady_fault())
    sim.run(until=horizon)
    lag = (learned_at[0] - persistent_at) if learned_at else float("inf")
    return registry.notifications_sent, lag


def run(
    persistence: float = 5.0,
    poll_interval: float = 10.0,
    flap_period: float = 2.0,
    persistent_at: float = 20.0,
    horizon: float = 120.0,
) -> Table:
    """Regenerate the A1 table: policy vs messages and adaptation lag."""
    table = Table(
        "A1: notification policy -- push traffic vs adaptation lag",
        ["policy", "messages pushed", "lag to learn persistent fault (s)"],
        note="paper: broadcast only persistent faults; transient stutters "
        "are too frequent to distribute",
    )
    for policy in (
        NotificationPolicy.IMMEDIATE,
        NotificationPolicy.PERSISTENT_ONLY,
        NotificationPolicy.NONE,
    ):
        sent, lag = _drive(
            policy, persistence, poll_interval, flap_period, persistent_at, horizon
        )
        table.add_row(policy.value, sent, lag)
    return table
