"""E3: transparent bad-block remapping shaves sequential bandwidth.

Section 2.1.2: among otherwise identical 5400-RPM Seagate Hawks, "most
of the disks deliver 5.5 MB/s on sequential reads, [but] one such disk
delivered only 5.0 MB/s.  Because the lesser-performing disk had three
times the block faults than other devices", bad-block remapping --
invisible to users and file systems -- was the suspected cause.

Sweep the remap rate (1x = the healthy farm's rate) and measure the
sequential-read bandwidth of the resulting disk.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.badblocks import BadBlockMap
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import sequential_scan

__all__ = ["run"]


def _bandwidth(base_fault_rate: float, multiplier: float, seed: int, nblocks: int) -> float:
    # 64 KB blocks: at streaming granularity a remap detour (out to the
    # spare area and back, ~2 positioning times) costs about 3x a block
    # transfer, which is what lets percent-level remap rates shave
    # visible bandwidth, as on the real Hawks.
    sim = Simulator()
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.064, remap_penalty=0.033)
    badblocks = BadBlockMap.random(
        200_000, base_fault_rate * multiplier, random.Random(seed)
    )
    disk = Disk(
        sim,
        "hawk",
        geometry=uniform_geometry(200_000, 5.5),
        params=params,
        badblocks=badblocks,
    )
    result = sim.run(until=sequential_scan(sim, disk, nblocks=nblocks, chunk=64))
    return result.bandwidth_mb_s


def run(
    base_fault_rate: float = 0.012,
    multipliers: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 5.0),
    nblocks: int = 8000,
    seed: int = 42,
) -> Table:
    """Regenerate the E3 table: remap-rate multiplier vs MB/s."""
    table = Table(
        "E3: sequential read bandwidth vs bad-block remap rate (Hawk, 5.5 MB/s)",
        ["fault-rate multiplier", "measured MB/s", "fraction of clean"],
        note="paper: 3x the block faults took 5.5 -> 5.0 MB/s (~91%)",
    )
    clean = _bandwidth(base_fault_rate, 0.0, seed, nblocks)
    for multiplier in multipliers:
        bw = _bandwidth(base_fault_rate, multiplier, seed, nblocks)
        table.add_row(multiplier, bw, bw / clean)
    return table
