"""E14: availability under performance faults (Section 3.3).

Gray & Reuter availability: "the fraction of the offered load that is
processed with acceptable response times."  The paper argues: "A system
that only utilizes the fail-stop model is likely to deliver poor
performance under even a single performance failure; if performance
does not meet the threshold, availability decreases.  In contrast, a
system that takes performance failures into account is likely to
deliver consistent, high performance, thus increasing availability."

One server pool, one mid-run performance fault, four routing designs:

* ``round-robin``  -- fail-stop illusion (components identical);
* ``jsq``          -- load-aware but rate-blind;
* ``weighted``     -- fail-stutter: least expected delay by observed rate;
* ``weighted+T``   -- fail-stutter plus the correctness watchdog, for the
  stall case where the faulty server never completes anything.

The round-robin row is also reducible to the seed-batch engine
(``run(batch=True)`` / :func:`run_batch`): modular routing never
consults server state while servers merely stutter (stall is not stop),
so request ``k`` lands on server ``k % n`` unconditionally and each
server is an independent open-arrival FIFO lane.  The load-aware rows
route on evolving queue/rate estimates and stay on the scalar engine.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Dict, Optional, Tuple

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..core.system import (
    FailStutterSystem,
    JsqRouter,
    RoundRobinRouter,
    System,
    WeightedRouter,
)
from ..faults.component import DegradableServer
from ..faults.spec import PerformanceSpec
from ..sim.batch import LaneProgram, SeedBatchRunner
from ..sim.metrics import AvailabilityMeter

__all__ = ["run", "run_batch"]

ROUTERS = {
    "round-robin": RoundRobinRouter,
    "jsq": JsqRouter,
    "weighted": WeightedRouter,
}


def _run_policy(
    policy: str,
    fault_factor: Optional[float],
    n_servers: int,
    n_requests: int,
    arrival_gap: float,
    slo: float,
    seed: int,
) -> float:
    sim = System()
    use_watchdog = policy == "weighted+T"
    spec = PerformanceSpec(
        nominal_rate=10.0,
        tolerance=0.2,
        correctness_timeout=5.0 if use_watchdog else None,
    )
    servers = [
        DegradableServer(sim, f"s{i}", spec.nominal_rate, spec=spec)
        for i in range(n_servers)
    ]
    router_cls = ROUTERS["weighted" if use_watchdog else policy]
    system = FailStutterSystem(
        sim, servers, spec, router=router_cls(), use_watchdog=use_watchdog
    )
    # The fault lands a fifth of the way through the request stream, on
    # the last server -- addressed via the registry, not the local list.
    fault_at = n_requests * arrival_gap / 5
    if fault_factor is not None:
        faulted = sim.components.get(f"s{n_servers - 1}")
        sim.schedule(fault_at, faulted.set_slowdown, "fault", fault_factor)

    meter = AvailabilityMeter(slo=slo)
    rng = random.Random(seed)

    def one():
        issued = sim.now
        try:
            yield system.submit(1.0)
        except Exception:
            meter.record(None)
            return
        meter.record(sim.now - issued)

    def source():
        for __ in range(n_requests):
            sim.process(one())
            yield sim.timeout(rng.expovariate(1.0 / arrival_gap))

    sim.process(source())
    horizon = n_requests * arrival_gap * 10
    sim.run(until=horizon)
    # Anything still outstanding at the horizon counts as unserved.
    while meter.offered < n_requests:
        meter.record(None)
    return meter.availability()


def _batch_round_robin(
    faults: Tuple[Optional[float], ...],
    n_servers: int,
    n_requests: int,
    arrival_gap: float,
    slo: float,
    seed: int,
) -> Dict[Optional[float], float]:
    """Every round-robin (fault,) cell as lanes of one batched run.

    Replays the scalar harness op for op: arrival ``k`` is the chained
    ``expovariate`` prefix sum (first request at t=0), request ``k``
    routes to server ``k % n_servers``, the fault lands on the last
    server a fifth of the way through the stream, and the run truncates
    at the same horizon.  Each (fault, server) pair is one open-arrival
    lane; the availability counters fold per fault group.
    """
    rng = random.Random(seed)
    times = []
    t = 0.0
    for __ in range(n_requests):
        times.append(t)
        t += rng.expovariate(1.0 / arrival_gap)
    fault_at = n_requests * arrival_gap / 5
    horizon = n_requests * arrival_gap * 10
    nominal = 10.0

    lanes = []
    groups = []
    for fault in faults:
        first = len(lanes)
        for i in range(n_servers):
            arr = times[i::n_servers]
            if not arr:
                continue
            edges = iter(())
            if fault is not None and i == n_servers - 1:
                edges = iter(((fault_at, nominal * fault),))
            lanes.append(
                LaneProgram(
                    start=arr[0],
                    works=[1.0] * len(arr),
                    edges=edges,
                    rate=nominal,
                    arrivals=arr,
                )
            )
        groups.append((fault, first, len(lanes)))

    result = SeedBatchRunner(lanes, slo=slo, horizon=horizon).run()
    meter = result.availability
    out: Dict[Optional[float], float] = {}
    for fault, lo, hi in groups:
        offered = int(meter.offered[lo:hi].sum())
        within = int(meter.within_slo[lo:hi].sum())
        out[fault] = 1.0 if offered == 0 else within / offered
    return out


def _availability_point(
    point: Tuple[str, Optional[float]],
    n_servers: int,
    n_requests: int,
    arrival_gap: float,
    slo: float,
    seed: int,
) -> float:
    """One (policy, fault) sweep point; module-level so it pickles."""
    policy, fault = point
    return _run_policy(policy, fault, n_servers, n_requests, arrival_gap, slo, seed)


def run(
    n_servers: int = 4,
    n_requests: int = 600,
    arrival_gap: float = 0.05,
    slo: float = 0.5,
    seed: int = 17,
    workers: Optional[int] = None,
    batch: bool = False,
) -> Table:
    """Regenerate the E14 table: policy x fault availability.

    Every (policy, fault) cell is an independent simulation seeded from
    ``seed``, so ``workers`` fans the grid out over a process pool
    without changing the table (``None`` = serial).  ``batch=True``
    runs the round-robin row on the vectorized seed-batch engine
    (bit-identical, see :func:`_batch_round_robin`); the load-aware
    rows stay scalar either way.
    """
    table = Table(
        f"E14: availability (SLO {slo}s) of a {n_servers}-server pool, "
        "one server faulted mid-run",
        ["policy", "no fault", "20x slowdown", "full stall"],
        note="paper: fail-stop designs lose availability under a single "
        "performance fault; fail-stutter designs keep it",
    )
    policies = ("round-robin", "jsq", "weighted", "weighted+T")
    faults = (None, 0.05, 0.0)
    points = [
        (policy, fault)
        for policy in policies
        for fault in faults
        if not (batch and policy == "round-robin")
    ]
    point_fn = partial(
        _availability_point,
        n_servers=n_servers,
        n_requests=n_requests,
        arrival_gap=arrival_gap,
        slo=slo,
        seed=seed,
    )
    results = dict(parallel_sweep(points, point_fn, workers=workers))
    if batch:
        batched = _batch_round_robin(
            faults, n_servers, n_requests, arrival_gap, slo, seed
        )
        for fault in faults:
            results[("round-robin", fault)] = batched[fault]
    for policy in policies:
        table.add_row(policy, *(results[(policy, fault)] for fault in faults))
    return table


def run_batch(**kwargs) -> Table:
    """:func:`run` with the batched round-robin row (same table)."""
    return run(batch=True, **kwargs)
