"""E4: SCSI timeouts, parity errors and chain-wide resets.

Section 2.1.2, from Talagala & Patterson's 400-disk farm over 6 months:
"SCSI timeouts and parity errors make up 49% of all errors; when network
errors are removed, this figure rises to 87%" -- about two per day --
and "these errors often lead to SCSI bus resets, affecting the
performance of all disks on the degraded SCSI chain."

Two parts: (a) the error-accounting table over a long simulated window;
(b) the performance impact of resets on a streaming scan sharing the
chain.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional

from ..analysis.parallel import parallel_sweep
from ..analysis.report import Table
from ..faults.distributions import Exponential, Fixed
from ..sim.engine import Simulator
from ..storage.bus import TALAGALA_MIX, ScsiBus
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import sequential_scan

__all__ = ["run"]

DAY = 86_400.0


def _chain(sim: Simulator, n_disks: int):
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    return [
        Disk(sim, f"d{i}", geometry=uniform_geometry(2_000_000, 5.5), params=params)
        for i in range(n_disks)
    ]


def _scan_bandwidth(
    with_resets: bool, n_disks: int, reset_seconds: float, seed: int
) -> float:
    """Part (b) sweep point: streaming-scan bandwidth on a quiet or
    resetting chain.  Module-level (picklable) and independently seeded,
    so the two points can run in parallel workers."""
    sim = Simulator()
    disks = _chain(sim, n_disks)
    if with_resets:
        bus = ScsiBus(
            sim,
            disks,
            error_interarrival=Exponential(20.0),  # accelerated cadence
            reset_duration=Fixed(reset_seconds),
            mix=TALAGALA_MIX,
            rng=random.Random(seed),
        )
        bus.start()
    result = sim.run(until=sequential_scan(sim, disks[0], nblocks=4000, chunk=64))
    return result.bandwidth_mb_s


def run(
    n_disks: int = 8,
    days: float = 30.0,
    errors_per_day: float = 2.0,
    reset_seconds: float = 2.0,
    seed: int = 7,
    workers: Optional[int] = None,
) -> Table:
    """Regenerate the E4 table: error accounting plus reset impact.

    The part-(b) scan points are independent simulations; ``workers``
    runs them through a process pool (``None`` = serial, same output).
    """
    # Part (a): accounting over a long window.
    sim = Simulator()
    disks = _chain(sim, n_disks)
    bus = ScsiBus(
        sim,
        disks,
        error_interarrival=Exponential(DAY / errors_per_day),
        reset_duration=Fixed(reset_seconds),
        mix=TALAGALA_MIX,
        rng=random.Random(seed),
    )
    bus.start()
    sim.run(until=days * DAY)
    observed_per_day = len(bus.errors) / days

    # Part (b): scan bandwidth with a fast reset cadence to expose impact.
    scan_fn = partial(
        _scan_bandwidth, n_disks=n_disks, reset_seconds=reset_seconds, seed=seed
    )
    scans = dict(parallel_sweep([False, True], scan_fn, workers=workers))
    clean = scans[False]
    noisy = scans[True]

    table = Table(
        f"E4: SCSI chain errors over {days:.0f} simulated days ({n_disks}-disk chain)",
        ["metric", "measured", "paper"],
        note="scan rows use an accelerated error cadence to expose the reset cost",
    )
    table.add_row("errors/day", observed_per_day, errors_per_day)
    table.add_row("SCSI fraction of all errors", bus.scsi_error_fraction(), 0.49)
    table.add_row(
        "SCSI fraction excl. network", bus.scsi_error_fraction(exclude_network=True), 0.87
    )
    table.add_row("chain resets", float(bus.reset_count), float("nan"))
    table.add_row("scan MB/s, quiet chain", clean, 5.5)
    table.add_row("scan MB/s, resetting chain", noisy, float("nan"))
    return table
