"""E24: intermittent disk offlining vs video streaming (Bolosky/Tiger).

Section 2.1.2: "They noticed that disks in their video file server
would go off-line at random intervals for short periods of time,
apparently due to thermal recalibrations."

A video server is the harshest audience for performance faults: frames
have deadlines, so a disk that is merely *away for two seconds* glitches
every stream pinned to it.  Serve S streams from mirrored pairs under
intermittent offline episodes, with two read policies:

* ``primary`` -- each stream reads its fixed primary member (the
  fail-stop design: the member has not failed, so nothing reroutes);
* ``mirror``  -- reads go to the less-loaded *live* member and a stalled
  member's backlog steers subsequent reads to its mirror;
* ``hedged``  -- every read is issued to both members and the first
  response wins (Shasha & Turek duplication at request granularity):
  a recalibrating member costs nothing but its wasted twin read.

The measured glitch fraction is the availability story at frame
granularity.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..faults.distributions import Exponential, Uniform
from ..faults.library import IntermittentOffline
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.raid import Raid1Pair

__all__ = ["run"]

PARAMS = DiskParams(rpm=7200, avg_seek=0.008, block_size_mb=0.25)


def _serve(policy: str, offline_mean_gap: float, n_streams: int, n_frames: int,
           period: float, seed: int) -> float:
    """Serve all streams; returns the fraction of late frames."""
    sim = Simulator()
    rng = random.Random(seed)
    pairs = []
    for i in range(4):
        d1 = Disk(sim, f"d{2*i}", uniform_geometry(400_000, 8.0), PARAMS)
        d2 = Disk(sim, f"d{2*i+1}", uniform_geometry(400_000, 8.0), PARAMS)
        pairs.append(Raid1Pair(sim, d1, d2))
        if offline_mean_gap > 0:
            # Thermal recalibration hits primaries at random intervals.
            IntermittentOffline(
                interarrival=Exponential(offline_mean_gap),
                duration=Uniform(0.5, 2.0),
            ).attach(sim, d1, random.Random(rng.randrange(2**32)))

    glitches = [0]
    served = [0]

    def stream(index: int):
        # Frames play on an absolute schedule: frame k must be delivered
        # by start + (k+1)*period or the viewer sees a glitch.  A stalled
        # disk therefore costs one glitch per frame period it is away.
        pair = pairs[index % len(pairs)]
        lba = (index * 5000) % 300_000
        start = sim.now
        for frame in range(n_frames):
            due = start + frame * period
            if sim.now < due:
                yield sim.timeout(due - sim.now)
            if policy == "primary":
                yield pair.primary.read(lba + frame, 1)
            elif policy == "mirror":
                yield pair.read(lba + frame, 1)
            else:  # hedged: both members, first response wins
                yield sim.any_of(
                    [
                        pair.primary.read(lba + frame, 1),
                        pair.secondary.read(lba + frame, 1),
                    ]
                )
            served[0] += 1
            if sim.now > due + period:
                glitches[0] += 1

    streams = [sim.process(stream(i)) for i in range(n_streams)]
    sim.run(until=sim.all_of(streams))
    return glitches[0] / served[0]


def run(
    offline_gaps: Sequence[float] = (0.0, 60.0, 20.0, 8.0),
    n_streams: int = 8,
    n_frames: int = 120,
    period: float = 0.25,
    seed: int = 61,
) -> Table:
    """Regenerate the E24 table: offline rate vs glitch fraction."""
    table = Table(
        f"E24: video server glitches under intermittent disk offlining "
        f"({n_streams} streams, {period}s frame period)",
        [
            "mean gap between episodes (s)",
            "primary-only glitches",
            "mirror-failover glitches",
            "hedged-read glitches",
        ],
        note="paper: video-server disks 'would go off-line at random "
        "intervals for short periods' (thermal recalibration); mirrored "
        "and hedged reads mask the stalls",
    )
    for gap in offline_gaps:
        primary = _serve("primary", gap, n_streams, n_frames, period, seed)
        mirror = _serve("mirror", gap, n_streams, n_frames, period, seed)
        hedged = _serve("hedged", gap, n_streams, n_frames, period, seed)
        label = float("inf") if gap == 0 else gap
        table.add_row(label, primary, mirror, hedged)
    return table
