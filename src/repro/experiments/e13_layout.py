"""E13: aged file-system layouts halve sequential reads (Section 2.2.1).

"Sequential file read performance across aged file systems varies by up
to a factor of two, even when the file systems are otherwise empty.
However, when the file systems are recreated afresh, sequential file
read performance is identical across all drives."

Sweep layout fragmentation; a freshly created layout reads at zone rate,
aged layouts pay a seek per extent.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..analysis.report import Table
from ..sim.engine import Simulator
from ..storage.disk import Disk, DiskParams
from ..storage.geometry import uniform_geometry
from ..storage.workload import file_layout, read_layout

__all__ = ["run"]


def run(
    fragmentations: Sequence[float] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0),
    file_blocks: int = 2000,
    seed: int = 5,
) -> Table:
    """Regenerate the E13 table: fragmentation vs sequential-read MB/s.

    File blocks are 64 KB (file-system allocation granularity, not the
    0.5 MB streaming unit): at that size a seek costs ~3 block transfers,
    so realistic extent fragmentation produces the paper's factor-of-two
    spread.
    """
    table = Table(
        "E13: sequential file read vs file-system aging (fragmentation)",
        ["fragmentation", "read MB/s", "fraction of fresh"],
        note="paper: aged vs fresh file systems differ by up to 2x",
    )
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.064)
    fresh_bw = None
    for frag in fragmentations:
        sim = Simulator()
        disk = Disk(sim, "aged", geometry=uniform_geometry(500_000, 5.5), params=params)
        layout = file_layout(file_blocks, frag, 500_000, random.Random(seed))
        result = sim.run(until=read_layout(sim, disk, layout))
        if fresh_bw is None:
            fresh_bw = result.bandwidth_mb_s
        table.add_row(frag, result.bandwidth_mb_s, result.bandwidth_mb_s / fresh_bw)
    return table
