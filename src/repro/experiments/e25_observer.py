"""E25: performance faults are observer-dependent (Section 3.1).

"Further, a performance failure from the perspective of one component
may not manifest itself to others (e.g., the failure is caused by a bad
network link)."

Two clients measure the same server across a small fabric.  Scenario 1
degrades client A's access link: A's detector declares the server
performance-faulty while C's says it is healthy -- broadcasting A's
verdict would poison C's view.  Scenario 2 degrades the server's shared
uplink: now both observers agree, the case worth exporting to the
performance-state registry.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.detection import ThresholdDetector
from ..faults.spec import PerformanceSpec
from ..network.fabric import Fabric
from ..sim.engine import Simulator

__all__ = ["run"]


def _build(sim: Simulator) -> Fabric:
    fabric = Fabric(sim)
    fabric.add_link("clientA", "mid", 10.0)
    fabric.add_link("clientC", "mid", 10.0)
    fabric.add_link("mid", "server", 10.0)
    return fabric


def _observe(fabric: Fabric, sim: Simulator, client: str, n_probes: int,
             probe_mb: float) -> ThresholdDetector:
    spec = PerformanceSpec(nominal_rate=10.0, tolerance=0.25)
    detector = ThresholdDetector(spec, min_samples=3)

    def probing():
        for __ in range(n_probes):
            start = sim.now
            yield fabric.transfer(client, "server", probe_mb)
            detector.observe(probe_mb, sim.now - start)
            yield sim.timeout(0.5)

    sim.run(until=sim.process(probing()))
    return detector


def run(n_probes: int = 8, probe_mb: float = 5.0, factor: float = 0.2) -> Table:
    """Regenerate the E25 table: scenario x observer verdicts."""
    table = Table(
        "E25: is the server performance-faulty?  Depends who is asking",
        ["fault location", "observer", "estimated MB/s", "verdict on server"],
        note="per-observer verdicts justify Section 3.1's caution about "
        "broadcasting every performance fault: only the shared-link case "
        "is global truth",
    )
    scenarios = (
        ("none", None),
        ("clientA's access link", ("clientA", "mid")),
        ("server's shared uplink", ("mid", "server")),
    )
    for label, bad_link in scenarios:
        sim = Simulator()
        fabric = _build(sim)
        if bad_link is not None:
            fabric.link(*bad_link).set_slowdown("bad-cable", factor)
        for client in ("clientA", "clientC"):
            detector = _observe(fabric, sim, client, n_probes, probe_mb)
            table.add_row(
                label,
                client,
                detector.estimated_rate,
                "faulty" if detector.faulty else "healthy",
            )
    return table
