"""Discrete-event simulation engine.

This module is the substrate on which every simulated component in the
library runs.  It provides a small, deterministic, generator-based
discrete-event kernel in the style of SimPy:

* :class:`Simulator` -- the event loop and virtual clock.
* :class:`Event` -- a one-shot occurrence that carries a value or an error.
* :class:`Timeout` -- an event that fires after a virtual delay.
* :class:`Callback` -- a cancellable timer that calls a plain function.
* :class:`Process` -- a generator coroutine driven by the events it yields.
* :class:`AllOf` / :class:`AnyOf` -- event combinators.
* :class:`Interrupt` -- the exception thrown into an interrupted process.

Determinism matters here: the fail-stutter experiments compare policies
against each other under identical fault schedules, so two runs with the
same seed must produce byte-identical traces.  The engine guarantees a
total order on event execution via a monotonically increasing sequence
number used as the final heap tie-breaker.

Performance matters too: every experiment and ablation runs on this
loop, so the hot path (:meth:`Simulator.run`, :meth:`Process._resume`)
avoids attribute lookups and re-wrapping.  Cancellation is *lazy*: a
cancelled :class:`Timeout`/:class:`Callback` stays in the heap and is
skipped for free when popped (its ``callbacks`` slot is ``None``),
rather than paying O(n) heap surgery up front.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable as _CallableT, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priority for interrupts, which must preempt same-time events.
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the engine (double trigger, bad yield, ...)."""


class StopSimulation(Exception):
    """Internal control-flow exception used by :meth:`Simulator.run`."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    whatever object the interrupter supplied (e.g. a fault record).
    """

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* once it has a value (or
    error) and is sitting in the simulator's queue, and becomes *processed*
    after its callbacks have run.  Processes wait on events by yielding
    them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.  Set to
        #: ``None`` after processing (appending then is an error) and on
        #: cancellation (so the scheduler skips the entry for free).
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception object if it failed)."""
        if self._value is Event._PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        _heappush(sim._queue, (sim._now, PRIORITY_NORMAL, sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        When a failed event is processed and nothing has *defused* it (no
        waiting process took responsibility for the error), the exception
        propagates out of :meth:`Simulator.run` -- errors never pass
        silently.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, PRIORITY_NORMAL, 0.0)
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future.

    Supports :meth:`cancel`: a cancelled timeout never runs its callbacks
    and is skipped lazily when the scheduler pops it off the heap.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ plus enqueue: timeouts are the single
        # most-constructed object in a simulation, so skip the redundant
        # pending-state stores and the two call frames.
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._cancelled = False
        self._ok = True
        self._value = value
        sim._seq += 1
        _heappush(sim._queue, (sim._now + delay, PRIORITY_NORMAL, sim._seq, self))

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Revoke the timeout before it fires.

        The heap entry is left in place and skipped for free when popped
        (lazy deletion).  Cancelling twice is a no-op; cancelling after
        the timeout already fired is an error.  Do not cancel a timeout a
        process is currently waiting on -- that process would never be
        resumed; cancellation is for fire-and-forget timers.
        """
        if self._cancelled:
            return
        if self.callbacks is None:
            raise SimulationError(f"cannot cancel already-fired {self!r}")
        self._cancelled = True
        self.callbacks = None


class Callback(Timeout):
    """A lightweight cancellable timer that invokes ``fn(*args)``.

    Created via :meth:`Simulator.call_later` / :meth:`Simulator.call_at`.
    Unlike wrapping the call in a :class:`Process`, this costs one heap
    entry and no generator frame -- it is the fast path for components
    (e.g. :class:`~repro.sim.resources.RateServer`) that need to arm and
    re-arm completion timers at high frequency.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim: "Simulator", delay: float, fn: _CallableT, args: tuple):
        super().__init__(sim, delay)
        self._fn = fn
        self._args = args
        self.callbacks.append(self._run)

    def _run(self, _event: Event) -> None:
        self._fn(*self._args)


class _Initialize(Event):
    """Internal: kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._enqueue(self, PRIORITY_URGENT, 0.0)


class Process(Event):
    """A generator coroutine running inside the simulation.

    The generator yields :class:`Event` instances (including other
    processes); each yield suspends the process until the event is
    processed.  The process itself is an event that succeeds with the
    generator's return value, so processes compose: ``result = yield
    sim.process(child())``.

    If a yielded event fails, the exception is re-raised *inside* the
    generator at the yield point, so processes handle downstream errors
    with ordinary ``try/except``.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on (None when it is
        #: scheduled to run or finished).
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered at the current simulation time with
        urgent priority.  Interrupting a finished process is an error;
        interrupting a process waiting on an event simply abandons that
        wait (the event may still fire later and is ignored by this
        process).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting; cannot interrupt")
        # Detach from the event we were waiting on.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._enqueue(interrupt_event, PRIORITY_URGENT, 0.0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self._target = None
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process yielded non-event {next_event!r}; yield Event/Timeout/Process"
                )
                try:
                    generator.throw(error)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as exc:
                    self.fail(exc)
                return

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Not yet processed: park until it fires.
                callbacks.append(self._resume)
                self._target = next_event
                return
            # Already processed: feed its outcome straight back in.
            event = next_event


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> list:
        return [ev._value for ev in self.events]


class AllOf(_Condition):
    """Succeeds with the list of all values once every event succeeds.

    Fails with the first failing event's exception (remaining events are
    left to run; their failures are defused through this condition).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds with the value of the first event to succeed.

    Fails if the first event to trigger fails.  Later events are ignored
    (and their failures defused).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)


class Simulator:
    """The discrete-event loop and virtual clock.

    Typical use::

        sim = Simulator()

        def writer():
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(writer())
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a :class:`Process`."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first event in ``events``."""
        return AnyOf(self, events)

    def call_later(self, delay: float, fn: _CallableT, *args: Any) -> Callback:
        """Call ``fn(*args)`` after ``delay``; returns a cancellable timer.

        This is the lightweight fast path for fire-and-forget callbacks:
        no generator frame, no urgent kick-start event -- one heap entry.
        Use :meth:`schedule` instead when you need the call's return
        value as an event.
        """
        return Callback(self, delay, fn, args)

    def call_at(self, when: float, fn: _CallableT, *args: Any) -> Callback:
        """Call ``fn(*args)`` at absolute virtual time ``when``."""
        delay = when - self._now
        if delay < 0:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        return Callback(self, delay, fn, args)

    def schedule(self, delay: float, fn: _CallableT, *args: Any) -> Event:
        """Call ``fn(*args)`` after ``delay``; returns the firing event.

        The event succeeds with the call's return value (or fails with
        its exception, which surfaces out of :meth:`run` unless a waiter
        defuses it).  Implemented on the :class:`Callback` fast path
        rather than spawning a generator process per call.
        """
        event = Event(self)

        def runner():
            try:
                event.succeed(fn(*args))
            except BaseException as exc:
                event.fail(exc)

        Callback(self, delay, runner, ())
        return event

    # -- the loop -----------------------------------------------------------

    def _enqueue(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        _heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none.

        Defunct (cancelled) entries at the head of the heap are dropped
        here so the reported time is that of an event that will really
        run.
        """
        queue = self._queue
        while queue:
            if queue[0][3].callbacks is None:
                heapq.heappop(queue)
                continue
            return queue[0][0]
        return float("inf")

    def step(self) -> None:
        """Process exactly one live event.  Raises IndexError if queue empty.

        Cancelled entries are skipped without advancing the clock.
        """
        queue = self._queue
        while True:
            when, _prio, _seq, event = heapq.heappop(queue)
            callbacks = event.callbacks
            if callbacks is None:
                continue  # defunct (cancelled) entry: lazy skip
            if when < self._now:
                raise SimulationError("time went backwards; corrupted queue")
            self._now = when
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # Nothing took responsibility for the failure: surface it.
                raise event._value
            return

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that virtual time, inclusive of events at it), or an
        :class:`Event` (run until it is processed, returning its value or
        raising its exception).
        """
        stop_at = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev)

            until.callbacks.append(_stop)
        elif isinstance(until, (int, float)):
            if until < self._now:
                raise SimulationError(f"until={until} is in the past (now={self._now})")
            stop_at = float(until)
        else:
            raise SimulationError(f"bad until={until!r}")

        # Hot loop: step() inlined with the heap, pop and clock bound to
        # locals.  Keep in sync with step() above.
        queue = self._queue
        pop = _heappop
        try:
            while queue and queue[0][0] <= stop_at:
                when, _prio, _seq, event = pop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # defunct (cancelled) entry: lazy skip
                if when < self._now:
                    raise SimulationError("time went backwards; corrupted queue")
                self._now = when
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            ev: Event = stop.value
            if not ev._ok:
                ev._defused = True
                raise ev._value
            return ev._value

        if isinstance(until, (int, float)) and not isinstance(until, bool):
            self._now = max(self._now, stop_at) if stop_at != float("inf") else self._now
        if isinstance(until, Event):
            raise SimulationError("simulation queue drained before `until` event fired")
        return None
