"""Deterministic, named random-number streams.

Experiments in this library compare scheduling policies against each other
*under the same fault schedule*.  If the workload and the fault injector
shared one RNG, changing the workload would perturb the faults and the
comparison would be meaningless.  :class:`RandomStreams` therefore derives
an independent, stably-seeded stream per name from a single root seed:

    streams = RandomStreams(seed=42)
    fault_rng = streams.get("faults/disk3")
    workload_rng = streams.get("workload")

The same ``(seed, name)`` pair always yields the same sequence, regardless
of creation order or of which other streams exist.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List

__all__ = ["RandomStreams", "derive_seed", "derive_seeds"]


def derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed for ``name`` under ``root_seed``.

    Uses SHA-256 rather than ``hash()`` so results do not depend on
    ``PYTHONHASHSEED`` or the interpreter version.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seeds(root_seed: int, prefix: str, count: int) -> List[int]:
    """``[derive_seed(root_seed, f"{prefix}{i}") for i in range(count)]``, faster.

    Indexed stream families (one stream per run of a sweep) all hash the
    same ``"{root_seed}:{prefix}"`` head; hashing it once and ``copy()``-ing
    the digest state per index produces identical seeds at a fraction of
    the cost, which matters when a batched experiment derives thousands
    of per-lane seeds up front.
    """
    base = hashlib.sha256(f"{root_seed}:{prefix}".encode("utf-8"))
    seeds = []
    for i in range(count):
        h = base.copy()
        h.update(str(i).encode("utf-8"))
        seeds.append(int.from_bytes(h.digest()[:8], "big"))
    return seeds


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are cached: ``get(name)`` returns the *same* generator object
    for repeated calls, so a component can keep drawing from its stream
    across the whole simulation.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child family whose root is derived from ``name``.

        Useful when one subsystem (e.g. a fault injector group) wants its
        own namespace of streams without risk of collision.
        """
        return RandomStreams(derive_seed(self.seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
