"""Event tracing and time-series capture.

Every experiment needs to answer "what happened, when" after a run.  The
classes here are deliberately plain -- append-only records with small
query helpers -- so that assertions in tests stay easy to write and runs
stay deterministic.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .engine import Simulator

__all__ = [
    "COMPLETION",
    "SPEC_VIOLATION",
    "STATE_CHANGE",
    "INJECTOR_EVENT",
    "TraceRecord",
    "Tracer",
    "TimeSeries",
    "Counter",
]

#: Structured telemetry kinds emitted by registered components (see
#: :mod:`repro.core.component`).  Kept here so trace consumers can filter
#: without importing the component layer.
COMPLETION = "completion"
SPEC_VIOLATION = "spec-violation"
STATE_CHANGE = "state-change"
#: Fault application/restoration announcements: emitted when an injector
#: attaches or is cancelled and when a campaign schedules an onset or a
#: restore on a component.  Hybrid runners subscribe to these (plus
#: ``STATE_CHANGE``) so a fluid segment never silently spans a rate
#: change the runner was not told about.
INJECTOR_EVENT = "injector-event"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence (slotted: traces allocate one per event)."""

    time: float
    kind: str
    subject: str
    detail: Any = None


class Tracer:
    """Append-only event log with filtered views.

    Components call :meth:`emit`; tests and reports query with
    :meth:`select`.  A disabled tracer drops records, so production-sized
    benchmark runs pay almost nothing.
    """

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def emit(self, kind: str, subject: str, detail: Any = None) -> None:
        """Record an occurrence at the current simulation time."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(self.sim.now, kind, subject, detail))

    def emit_record(self, record: TraceRecord) -> None:
        """Append an already-built record (telemetry-bus fan-in path)."""
        if not self.enabled:
            return
        self.records.append(record)

    def select(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records matching all the given filters, in time order."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if subject is not None and rec.subject != subject:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, kind: Optional[str] = None, subject: Optional[str] = None) -> int:
        """Number of matching records."""
        return len(self.select(kind=kind, subject=subject))

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


class TimeSeries:
    """A piecewise-constant signal sampled at change points.

    ``record(value)`` appends ``(now, value)``; the signal is assumed to
    hold that value until the next record.  Supports time-weighted
    averaging, which is what utilization/rate plots need.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, value: float) -> None:
        """Append the current value of the signal."""
        self.times.append(self.sim.now)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def at(self, time: float) -> Optional[float]:
        """Signal value holding at ``time`` (None before the first record)."""
        idx = bisect_right(self.times, time) - 1
        if idx < 0:
            return None
        return self.values[idx]

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """The (time, value) pairs recorded in ``[start, end)``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def time_average(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-weighted mean of the signal over ``[start, end]``.

        Periods before the first record contribute nothing (the span is
        clipped to start at the first record).
        """
        if not self.times:
            return 0.0
        if end is None:
            end = self.sim.now
        start = max(start, self.times[0])
        if end <= start:
            return self.values[-1] if self.times[-1] <= start else 0.0
        total = 0.0
        for i, t in enumerate(self.times):
            seg_start = max(t, start)
            seg_end = end if i + 1 >= len(self.times) else min(self.times[i + 1], end)
            if seg_end > seg_start:
                total += self.values[i] * (seg_end - seg_start)
        return total / (end - start)


class Counter:
    """Named monotonically increasing counters."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)
