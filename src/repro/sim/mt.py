"""CPython-compatible Mersenne Twister, vectorized across generators.

The seed-batch engine (:mod:`repro.sim.batch`) promises bit-for-bit
agreement with the scalar engine, whose randomness is ``random.Random``
streams keyed by :func:`~repro.sim.random.derive_seed`.  Constructing S
``random.Random`` objects costs ~10 us each (MT19937's 624-word
``init_by_array`` runs per seed), which becomes the dominant per-lane
cost once the event kernel is vectorized.

:class:`MersenneBank` removes that floor by running the *same* MT19937
algorithm for G generators at once as numpy ``(624, G)`` state: the
seeding recurrences, the twist and the tempering are all sequential in
the state index but independent across generators, so each step is one
vectorized op over all G columns.  The outputs are bit-identical to
CPython's — ``bank.double(g)`` replays exactly what
``random.Random(seeds[g]).random()`` would produce, call for call —
which the property tests pin against the reference implementation
(``tests/sim/test_mt.py``).

:class:`BankRandom` is the consumer-facing adapter: a ``random.Random``
drop-in for the three methods the batch lanes draw with (``random``,
``uniform``, ``expovariate``), using the exact CPython 3.10-3.12
formulas over the bank's double stream.

Only *seeding and word generation* are vectorized.  Transcendental
transforms (``expovariate``'s log) stay on ``math.log`` per draw: numpy's
SIMD ``np.log`` is not guaranteed ulp-identical to libm's, and exactness
outranks the last microsecond here.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from . import _native

__all__ = ["MersenneBank", "BankRandom"]

_N = 624
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)
_MAG = np.uint32(0x9908B0DF)


def _base_state() -> np.ndarray:
    """MT19937 state after ``init_genrand(19650218)``.

    ``init_by_array`` always starts from this seed-independent state, so
    it is computed once (plain Python ints, exact mod-2**32 arithmetic)
    and broadcast across generators.
    """
    mt = [0] * _N
    mt[0] = 19650218
    for i in range(1, _N):
        mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & 0xFFFFFFFF
    return np.array(mt, dtype=np.uint32)


_BASE_STATE = _base_state()


def _seed_key(seed: int) -> List[int]:
    """CPython's ``random_seed`` key: 32-bit words of ``abs(seed)``, little-endian."""
    value = abs(int(seed))
    words = [value & 0xFFFFFFFF]
    value >>= 32
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


class MersenneBank:
    """G MT19937 generators advanced in lockstep, one numpy op per step.

    ``seeds`` may be arbitrary Python ints (as ``random.Random`` accepts);
    generator ``g`` reproduces ``random.Random(seeds[g])`` exactly.  Word
    blocks are produced 624 at a time per generator (312 doubles) and
    extended on demand, so consumers can draw unbounded streams.

    ``emit`` bounds how many of block 0's doubles the native seeder
    materializes up front (default: the whole block).  Callers that know
    every lane draws only a handful of values pass a small ``emit`` to
    skip most of the temper/convert work; draws past it transparently
    complete the block, so the streams are identical either way.
    """

    def __init__(self, seeds: Sequence[int], emit: int = _N // 2):
        if not seeds:
            raise ValueError("need at least one seed")
        if not 1 <= emit <= _N // 2:
            raise ValueError(f"emit must be in 1..{_N // 2}, got {emit}")
        keys = [_seed_key(s) for s in seeds]
        gens = len(keys)
        if max(len(k) for k in keys) > _N:
            # > 19937-bit seeds: nobody derives these; fall outside the
            # vectorized path rather than model the longer key loop.
            raise ValueError("seed keys longer than 624 words are not supported")
        self._gens = gens
        self._block0_partial = False

        lib = _native.load()
        if lib is not None:
            self._seed_native(lib, keys, emit)
            return
        self._seed_numpy(keys)

    def _seed_native(self, lib, keys: List[List[int]], emit: int) -> None:
        """One C call: seed every generator, twist once, emit block 0."""
        gens = len(keys)
        lens = np.array([len(k) for k in keys], dtype=np.int32)
        offsets = np.zeros(gens, dtype=np.int64)
        np.cumsum(lens[:-1], out=offsets[1:])
        flat = np.array([w for k in keys for w in k], dtype=np.uint32)
        states = np.empty((gens, _N), dtype=np.uint32)
        doubles = np.empty((gens, emit), dtype=np.float64)
        lib.mt_seed_many(
            flat.ctypes.data,
            offsets.ctypes.data,
            lens.ctypes.data,
            gens,
            states.ctypes.data,
            doubles.ctypes.data,
            emit,
        )
        # The native path hands back the *post-twist* state with the
        # first `emit` doubles of block 0 consumed; the next _extend()
        # completes block 0 (partial) or twists again (full).
        # Transposed view: (624, G) like the numpy path, no copy (lanes
        # rarely outdraw block 0, so _extend's strided reads are rare).
        self._mt = states.T
        self._doubles = doubles
        self._block0_partial = emit < _N // 2

    def _seed_numpy(self, keys: List[List[int]]) -> None:
        """Pure-numpy init_by_array, used when no C compiler is available."""
        gens = len(keys)
        # State laid out (624, G): each seeding/twist step touches one
        # contiguous row across all generators.
        mt = np.repeat(_BASE_STATE[:, None], gens, axis=1)

        # init_by_array pass 1: 624 steps folding key[j] + j into the
        # state.  j advances modulo each generator's own key length, so
        # the per-step addend vector is precomputed per (length, phase).
        addends = np.zeros((_N, gens), dtype=np.uint32)
        lengths = sorted({len(k) for k in keys})
        steps = np.arange(_N)
        for length in lengths:
            cols = [g for g, k in enumerate(keys) if len(k) == length]
            col_idx = np.array(cols)
            for phase in range(length):
                rows = steps[steps % length == phase]
                vals = np.array(
                    [(keys[g][phase] + phase) & 0xFFFFFFFF for g in cols], dtype=np.uint32
                )
                addends[np.ix_(rows, col_idx)] = vals
        # Both passes run allocation-free: one scratch row, ufuncs with
        # ``out=``.  Each step is sequential in i (mt[i] depends on
        # mt[i-1]) but one vectorized op across all generators.
        scratch = np.empty(gens, dtype=np.uint32)
        thirty = np.uint32(30)
        mult1 = np.uint32(1664525)
        i = 1
        prev = mt[0]
        for s in range(_N):
            row = mt[i]
            np.right_shift(prev, thirty, out=scratch)
            np.bitwise_xor(prev, scratch, out=scratch)
            np.multiply(scratch, mult1, out=scratch)
            np.bitwise_xor(row, scratch, out=scratch)
            np.add(scratch, addends[s], out=row)
            prev = row
            i += 1
            if i >= _N:
                mt[0] = prev = mt[_N - 1]
                i = 1
        # Pass 2: 623 steps mixing with 1566083941 and subtracting i.
        mult2 = np.uint32(1566083941)
        for _ in range(_N - 1):
            row = mt[i]
            np.right_shift(prev, thirty, out=scratch)
            np.bitwise_xor(prev, scratch, out=scratch)
            np.multiply(scratch, mult2, out=scratch)
            np.bitwise_xor(row, scratch, out=scratch)
            np.subtract(scratch, np.uint32(i), out=row)
            prev = row
            i += 1
            if i >= _N:
                mt[0] = prev = mt[_N - 1]
                i = 1
        mt[0] = _UPPER

        # Post-seed state: no block generated yet, the first _extend()
        # performs the first twist (native path arrives one block ahead).
        self._mt = mt
        # (G, doubles) buffer of random() outputs produced so far.
        self._doubles = np.empty((gens, 0), dtype=np.float64)

    @property
    def gens(self) -> int:
        """Number of generators in the bank."""
        return self._gens

    def _twist(self) -> None:
        """Advance every generator's state one full 624-word block."""
        mt = self._mt
        old = mt.copy()
        y = (old[: _N - 1] & _UPPER) | (old[1:_N] & _LOWER)
        val = (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * _MAG)
        # The in-place C loop reads words updated earlier in the same
        # twist once i >= 227; resolve the cascade in stride-227 waves.
        mt[0:227] = old[397:624] ^ val[0:227]
        mt[227:454] = mt[0:227] ^ val[227:454]
        mt[454:623] = mt[227:396] ^ val[454:623]
        y_last = (old[623] & _UPPER) | (mt[0] & _LOWER)
        mt[623] = mt[396] ^ (y_last >> np.uint32(1)) ^ ((y_last & np.uint32(1)) * _MAG)

    def _temper_block(self) -> np.ndarray:
        """Temper the current state into its (G, 312) double block."""
        block = self._mt.copy()
        # Tempering, vectorized over the whole block.
        block ^= block >> np.uint32(11)
        block ^= (block << np.uint32(7)) & np.uint32(0x9D2C5680)
        block ^= (block << np.uint32(15)) & np.uint32(0xEFC60000)
        block ^= block >> np.uint32(18)
        # random(): a = next32() >> 5, b = next32() >> 6, then the exact
        # CPython combination (multiply by the 2**-53 reciprocal).
        a = (block[0::2] >> np.uint32(5)).astype(np.float64)
        b = (block[1::2] >> np.uint32(6)).astype(np.float64)
        doubles = (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)
        return np.ascontiguousarray(doubles.T)

    def _extend(self) -> None:
        """Generate the next 312 doubles for every generator."""
        if self._block0_partial:
            # The native seeder emitted only a prefix of block 0; the
            # state is already block 0's, so complete it without
            # advancing (the prefix is re-derived, identically).
            self._block0_partial = False
            self._doubles = self._temper_block()
            return
        self._twist()
        self._doubles = np.concatenate(
            [self._doubles, self._temper_block()], axis=1
        )

    def doubles(self, gen: int, count: int) -> List[float]:
        """The first ``count`` ``random()`` outputs of generator ``gen``."""
        while self._doubles.shape[1] < count:
            self._extend()
        return self._doubles[gen, :count].tolist()

    def doubles_array(self, count: int) -> np.ndarray:
        """``(gens, count)`` array view of every stream's first doubles.

        For draws that are pure arithmetic on ``random()`` -- e.g. a
        single ``uniform`` per lane -- consumers can transform this with
        elementwise numpy float64 ops (IEEE-identical to the scalar
        formula) instead of going through per-stream adapters.  Treat the
        view as read-only.
        """
        while self._doubles.shape[1] < count:
            self._extend()
        return self._doubles[:, :count]

    def streams(self, start: int, stop: int, prefetch: int = 0) -> List["BankRandom"]:
        """Adapters for generators ``start..stop``, optionally pre-buffered.

        With ``prefetch=k`` the first ``k`` doubles of every stream are
        materialized in one bulk ``tolist`` (one C call instead of one
        slice-and-convert per stream), which matters when thousands of
        lanes each draw a handful of values.
        """
        if prefetch <= 0:
            return [BankRandom(self, g) for g in range(start, stop)]
        while self._doubles.shape[1] < prefetch:
            self._extend()
        bufs = self._doubles[start:stop, :prefetch].tolist()
        return [
            BankRandom(self, g, _buf=bufs[g - start]) for g in range(start, stop)
        ]

    def stream(self, gen: int) -> "BankRandom":
        """A ``random.Random``-alike view over generator ``gen``'s stream."""
        return BankRandom(self, gen)


class BankRandom:
    """Drop-in for the ``random.Random`` draw methods batch lanes use.

    Formulas are copied from CPython (stable across 3.10-3.12):
    ``uniform(a, b) = a + (b - a) * random()`` and
    ``expovariate(lambd) = -log(1 - random()) / lambd``; ``random()``
    replays the underlying MT19937 stream bit for bit.
    """

    __slots__ = ("_bank", "_gen", "_buf", "_pos")

    def __init__(self, bank: MersenneBank, gen: int, _buf: "Optional[List[float]]" = None):
        self._bank = bank
        self._gen = gen
        self._buf: List[float] = _buf if _buf is not None else []
        self._pos = 0

    def random(self) -> float:
        """Next double in [0, 1): identical to ``random.Random.random``."""
        if self._pos >= len(self._buf):
            # Fetch in small chunks: typical lanes draw ~10 doubles, so
            # materializing a generator's whole 312-double block as a
            # Python list would dominate the per-lane cost.
            self._buf = self._bank.doubles(self._gen, max(16, 2 * len(self._buf)))
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def uniform(self, a: float, b: float) -> float:
        """CPython's ``uniform``: ``a + (b - a) * random()``."""
        return a + (b - a) * self.random()

    def expovariate(self, lambd: float) -> float:
        """CPython's ``expovariate``: ``-log(1 - random()) / lambd``."""
        return -math.log(1.0 - self.random()) / lambd
