"""Vectorized seed-batch engine: S seeds as structure-of-arrays lanes.

Every experiment in this repo is really a *distribution over seeds* —
the paper's central claim is that performance-faulty components need
statistical characterization — and the scalar path pays a full Python
event loop per seed.  This module runs S independent single-server
timelines ("lanes") in one process as numpy structure-of-arrays state,
advancing all lanes together with a fused "next event across all lanes"
loop: each Python-level iteration retires one event *per active lane*
via masked numpy ops, so the interpreter cost is paid per event *depth*
(max events on any one lane), not per event *count* (sum over lanes).

Exactness contract (the house style: speedups are certified, not
trusted):

* A lane mirrors :class:`~repro.sim.resources.RateServer`'s accrual
  arithmetic operation for operation — ``remaining -= (t - last) * rate``
  with a ``< 0 -> 0.0`` clamp, completion timers armed at
  ``t + remaining / rate``, and the ``> 1e-9`` float-residue recheck on
  fire.  numpy float64 elementwise ops are IEEE-754 identical to Python
  float scalar ops, so lane results compare ``==`` against the scalar
  engine, not ``approx`` (see ``tests/sim/test_batch.py`` and
  ``tests/experiments/test_batch_equivalence.py``).
* Per-lane randomness stays on ``random.Random`` streams derived via
  :func:`~repro.sim.random.derive_seed` — Mersenne Twister draws cannot
  be reproduced by numpy's generators, and the draws are O(episodes),
  not O(events), so keeping them scalar costs nothing.  Only the hot
  event-advance kernel is vectorized.
* Event ties are resolved **edge, then start, then timer** at equal
  times.  Under continuous fault distributions ties between an edge and
  a completion are measure-zero; programs built from discrete schedules
  that need a different tie order are outside the batch regime and
  should raise :class:`BatchInfeasible` at construction.

:class:`BatchInfeasible` is the escape hatch mirroring
:class:`~repro.core.hybrid.HybridInfeasible`: feasibility is checked,
never assumed, and callers fall back to the scalar engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import StreamingMoments

__all__ = [
    "BatchInfeasible",
    "LaneProgram",
    "BatchMoments",
    "BatchAvailability",
    "BatchResult",
    "SeedBatchRunner",
]

#: Same residue threshold as ``repro.sim.resources._EPSILON``: a fired
#: completion timer re-arms instead of completing while more than this
#: much work remains (floating-point accrual residue).
_EPSILON = 1e-9


class BatchInfeasible(RuntimeError):
    """The workload is outside the seed-batch engine's exact regime.

    Raised when a lane program cannot be advanced with the guarantee of
    bit-for-bit agreement with the scalar engine (or cannot be advanced
    at all, e.g. a lane frozen at rate 0 with no future edge).  Callers
    catch it and fall back to the scalar per-seed path — mirroring
    :class:`~repro.core.hybrid.HybridInfeasible`.
    """


@dataclass
class LaneProgram:
    """One seed's timeline, reduced to the batch engine's primitives.

    A lane is a single FIFO rate server processing ``works`` back to
    back: job 0 is submitted at ``start``; each later job is submitted
    the instant its predecessor completes (a closed generator loop, like
    :func:`~repro.storage.workload.sequential_scan`).  ``edges`` yields
    the server's piecewise-constant rate schedule as ``(time, rate)``
    pairs in nondecreasing time order — typically a lazily-evaluated
    generator replaying a fault injector's RNG stream — and may be
    infinite: the runner pulls edges only while the lane is live.
    ``rate`` is the rate in force before the first edge.

    ``arrivals`` switches the lane from closed-loop to *open* arrivals:
    ``arrivals[j]`` is job ``j``'s submission instant (so
    ``arrivals[0] == start``), and each job enters service at
    ``max(arrival, predecessor completion)`` — exactly
    :meth:`RateServer.submit <repro.sim.resources.RateServer.submit>`
    on a server that may be busy or idle.  Response times are measured
    from the arrival, as the scalar engine measures them.
    """

    start: float
    works: Sequence[float]
    edges: Iterator[Tuple[float, float]] = field(default_factory=lambda: iter(()))
    rate: float = 1.0
    arrivals: Optional[Sequence[float]] = None

    def validate(self) -> None:
        """Reject programs the exact kernel cannot honor."""
        if not (math.isfinite(self.start) and self.start >= 0.0):
            raise BatchInfeasible(f"lane start must be finite and >= 0, got {self.start}")
        if not self.works:
            raise BatchInfeasible("lane has no jobs")
        for w in self.works:
            if not (math.isfinite(w) and w > 0.0):
                raise BatchInfeasible(f"job size must be finite and > 0, got {w}")
        if not (math.isfinite(self.rate) and self.rate >= 0.0):
            raise BatchInfeasible(f"initial rate must be finite and >= 0, got {self.rate}")
        if self.arrivals is not None:
            if len(self.arrivals) != len(self.works):
                raise BatchInfeasible(
                    f"arrivals/works length mismatch: {len(self.arrivals)} vs {len(self.works)}"
                )
            if float(self.arrivals[0]) != float(self.start):
                raise BatchInfeasible(
                    f"arrivals[0] must equal start, got {self.arrivals[0]} vs {self.start}"
                )
            prev = -math.inf
            for a in self.arrivals:
                if not (math.isfinite(a) and a >= prev):
                    raise BatchInfeasible(
                        f"arrivals must be finite and nondecreasing; got {a} after {prev}"
                    )
                prev = a


class BatchMoments:
    """Per-lane Welford moments, batched: the vectorized counterpart of
    :class:`~repro.sim.metrics.StreamingMoments`.

    ``push`` folds one observation into every lane selected by ``mask``
    using the same op sequence as the scalar ``push`` (count increment,
    ``delta / count``, ``delta * (x - mean)``), so each lane's running
    ``(count, mean, m2, min, max)`` is bit-identical to a scalar
    recorder fed the same per-lane stream.  ``fold`` combines all lanes
    into one :class:`StreamingMoments` scorecard via
    :meth:`StreamingMoments.merge` (Chan's parallel combine — exact for
    count/min/max, float-rounding-stable for mean/variance).
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self, lanes: int):
        self.count = np.zeros(lanes, dtype=np.int64)
        self.mean = np.zeros(lanes, dtype=np.float64)
        self._m2 = np.zeros(lanes, dtype=np.float64)
        self.minimum = np.full(lanes, np.inf, dtype=np.float64)
        self.maximum = np.full(lanes, -np.inf, dtype=np.float64)

    def push(self, values: np.ndarray, mask: np.ndarray) -> None:
        """Fold ``values[i]`` into lane ``i`` wherever ``mask[i]``."""
        if not mask.any():
            return
        count = self.count + mask
        delta = values - self.mean
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = self.mean + delta / count
        # Welford uses the *updated* mean in the m2 increment.
        m2 = self._m2 + delta * (values - mean)
        self.count = count
        self.mean = np.where(mask, mean, self.mean)
        self._m2 = np.where(mask, m2, self._m2)
        self.minimum = np.where(mask & (values < self.minimum), values, self.minimum)
        self.maximum = np.where(mask & (values > self.maximum), values, self.maximum)

    def lane(self, i: int) -> StreamingMoments:
        """Lane ``i``'s moments as a scalar :class:`StreamingMoments`."""
        out = StreamingMoments()
        out.count = int(self.count[i])
        if out.count:
            out.mean = float(self.mean[i])
            out._m2 = float(self._m2[i])
            out.minimum = float(self.minimum[i])
            out.maximum = float(self.maximum[i])
        return out

    def fold(self) -> StreamingMoments:
        """All lanes merged into one scorecard (Chan combine, in lane order)."""
        out = StreamingMoments()
        for i in range(len(self.count)):
            if self.count[i]:
                out.merge(self.lane(i))
        return out


class BatchAvailability:
    """Per-lane Gray & Reuter availability counters, batched.

    The counting counterpart of
    :class:`~repro.sim.metrics.AvailabilityMeter`: offered / within-SLO
    / unserved tallies are integers, so lane counts and the folded
    aggregate are exact (``==`` against a scalar meter fed the same
    stream).  Quantile curves are not tracked here; fold response times
    through :class:`BatchMoments` and the
    :meth:`~repro.sim.metrics.P2Quantile.combine` fallback instead.
    """

    __slots__ = ("slo", "offered", "within_slo", "unserved")

    def __init__(self, lanes: int, slo: float):
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        self.slo = slo
        self.offered = np.zeros(lanes, dtype=np.int64)
        self.within_slo = np.zeros(lanes, dtype=np.int64)
        self.unserved = np.zeros(lanes, dtype=np.int64)

    def push(self, response_times: np.ndarray, mask: np.ndarray) -> None:
        """Record one served request per masked lane."""
        self.offered += mask
        self.within_slo += mask & (response_times <= self.slo)

    def record_unserved(self, mask: np.ndarray) -> None:
        """Record one never-served request per masked lane."""
        self.offered += mask
        self.unserved += mask

    def record_unserved_many(self, counts: np.ndarray) -> None:
        """Record ``counts[i]`` never-served requests on lane ``i``.

        The bulk form of :meth:`record_unserved`, used by the runner's
        horizon cut: every job a truncated lane never completed counts
        against availability, as the scalar harness's post-horizon
        ``meter.record(None)`` loop does.
        """
        self.offered += counts
        self.unserved += counts

    def availability(self) -> float:
        """Fraction of all offered load (every lane) served within SLO."""
        offered = int(self.offered.sum())
        if offered == 0:
            return 1.0
        return int(self.within_slo.sum()) / offered


@dataclass
class BatchResult:
    """Outcome of one :meth:`SeedBatchRunner.run`.

    ``finish[i]`` is the absolute time lane ``i``'s last job completed;
    ``start[i]`` its first submission time, so
    ``finish - start`` is each lane's makespan.  ``jobs_completed`` /
    ``work_completed`` match the scalar server's counters exactly;
    ``latency`` holds per-lane response-time moments (response time =
    completion - submission, as :class:`~repro.sim.resources.JobStats`
    defines it); ``availability`` is populated when the runner was given
    an SLO.
    """

    start: np.ndarray
    finish: np.ndarray
    jobs_completed: np.ndarray
    work_completed: np.ndarray
    events: int
    latency: BatchMoments
    availability: Optional[BatchAvailability] = None

    @property
    def makespan(self) -> np.ndarray:
        """Per-lane wall time from first submission to last completion."""
        return self.finish - self.start


class SeedBatchRunner:
    """Advance S independent lanes with one fused next-event loop.

    Each iteration computes every lane's next event time
    ``min(edge, start, timer)`` and retires exactly one event per active
    lane with masked numpy ops.  The only per-lane Python work is
    pulling the next ``(time, rate)`` pair from a lane's edge iterator
    after an edge fires — O(total episodes), off the hot path.

    ``max_events`` bounds the per-lane event depth as a runaway guard
    (e.g. an edge stream oscillating forever below the job's horizon);
    exceeding it raises :class:`BatchInfeasible` rather than spinning.

    ``horizon`` mirrors the scalar harness's ``sim.run(until=horizon)``:
    events at exactly the horizon still fire, but a lane whose next
    event lies strictly beyond it is cut there (``finish = horizon``)
    and its unfinished jobs are tallied as unserved on the availability
    counters.  The cut also covers lanes frozen at rate 0 with no
    future edge — with a horizon they are truncated like the scalar
    run, instead of raising :class:`BatchInfeasible`.
    """

    def __init__(
        self,
        lanes: Sequence[LaneProgram],
        slo: Optional[float] = None,
        max_events: int = 10_000_000,
        horizon: Optional[float] = None,
    ):
        if not lanes:
            raise BatchInfeasible("no lanes to run")
        for lane in lanes:
            lane.validate()
        if horizon is not None and not (math.isfinite(horizon) and horizon > 0.0):
            raise BatchInfeasible(f"horizon must be finite and > 0, got {horizon}")
        self._programs = list(lanes)
        self._slo = slo
        self._max_events = max_events
        self._horizon = horizon

    def run(self) -> BatchResult:
        """Run every lane to completion; returns the batched result."""
        programs = self._programs
        n = len(programs)
        max_jobs = max(len(p.works) for p in programs)

        # Structure-of-arrays lane state (float64 throughout: the ops
        # below are elementwise and IEEE-identical to the scalar engine).
        works = np.zeros((n, max_jobs), dtype=np.float64)
        n_jobs = np.zeros(n, dtype=np.int64)
        for i, p in enumerate(programs):
            n_jobs[i] = len(p.works)
            works[i, : len(p.works)] = [float(w) for w in p.works]

        starts = [float(p.start) for p in programs]
        rates = [float(p.rate) for p in programs]
        edge_times = [math.inf] * n
        edge_rates = [0.0] * n
        edges: List[Optional[Iterator[Tuple[float, float]]]] = [iter(p.edges) for p in programs]
        # Fast-forward edges at or before each lane's first submission:
        # the server is idle, so they are pure rate updates with nothing
        # to accrue.  The scalar engine does the same work inside
        # ``run(until=start)`` (every event with time <= start fires
        # before the workload submits), and it matches the kernel's
        # edge-before-start tie rule — so consuming them here in plain
        # Python saves fused iterations without touching the arithmetic.
        for i in range(n):
            it = edges[i]
            start = starts[i]
            prev = -math.inf
            while True:
                try:
                    when, new_rate = next(it)
                except StopIteration:
                    edges[i] = None
                    break
                when = float(when)
                if not (when >= prev and math.isfinite(when)):
                    raise BatchInfeasible(
                        f"edge stream must be nondecreasing and finite; got t={when} after {prev}"
                    )
                prev = when
                if when <= start:
                    if new_rate < 0.0:
                        raise BatchInfeasible("edge set a negative rate")
                    rates[i] = float(new_rate)
                    continue
                edge_times[i] = when
                edge_rates[i] = float(new_rate)
                break

        # Open-arrival lanes: per-job submission instants, padded with
        # +inf so the gather below is in-bounds past each lane's end.
        has_arr = np.zeros(n, dtype=bool)
        arrivals = np.full((n, max_jobs), np.inf, dtype=np.float64)
        for i, p in enumerate(programs):
            if p.arrivals is not None:
                has_arr[i] = True
                arrivals[i, : len(p.arrivals)] = [float(a) for a in p.arrivals]
        any_arr = bool(has_arr.any())

        lane_starts = np.array(starts)
        start_t = lane_starts.copy()  # inf while no submission is pending
        rate = np.array(rates)
        remaining = np.zeros(n)
        t_last = np.zeros(n)
        submit_t = np.zeros(n)
        timer = np.full(n, np.inf)
        edge_t = np.array(edge_times)
        edge_r = np.array(edge_rates)
        job_ptr = np.zeros(n, dtype=np.int64)
        done = np.zeros(n, dtype=bool)
        busy = np.zeros(n, dtype=bool)

        finish = np.zeros(n)
        jobs_completed = np.zeros(n, dtype=np.int64)
        work_completed = np.zeros(n)
        latency = BatchMoments(n)
        availability = BatchAvailability(n, self._slo) if self._slo is not None else None

        lane_ids = np.arange(n)
        horizon = self._horizon
        t = np.empty(n)
        events = 0
        # Masked-out lanes (done, or idle at rate 0) produce inf/nan in
        # the speculative elementwise ops below; every such value is
        # discarded by its mask, so the IEEE flags are noise here.  One
        # errstate frame wraps the whole loop: entering/exiting the
        # context per iteration is measurable against 60-lane arrays.
        with np.errstate(divide="ignore", invalid="ignore"):
            for _ in range(self._max_events):
                if done.all():
                    break
                np.minimum(edge_t, timer, out=t)
                np.minimum(t, start_t, out=t)
                active = ~done
                if horizon is not None:
                    # sim.run(until=horizon): events at the horizon fire,
                    # the first event strictly past it never does.  Frozen
                    # lanes (next event +inf) are cut by the same test.
                    over = active & (t > horizon)
                    if over.any():
                        np.copyto(finish, horizon, where=over)
                        np.logical_or(done, over, out=done)
                        np.copyto(timer, np.inf, where=over)
                        np.copyto(edge_t, np.inf, where=over)
                        np.copyto(start_t, np.inf, where=over)
                        active = ~done
                        if done.all():
                            break
                stalled = active & ~np.isfinite(t)
                if stalled.any():
                    raise BatchInfeasible(
                        f"{int(stalled.sum())} lane(s) frozen with no future event "
                        "(rate 0 and edge stream exhausted)"
                    )
                events += 1

                # Tie order: edge, then start, then timer (module docstring).
                is_edge = active & (edge_t == t)
                is_start = active & ~is_edge & (start_t == t)
                is_timer = active & ~is_edge & ~is_start & (timer == t)

                # State updates below are in-place masked stores
                # (np.copyto / ufunc where=): the values match the
                # rebinding np.where forms exactly, without allocating a
                # fresh lane-width array per update.
                if is_edge.any():
                    # RateServer.set_rate: _accrue() then re-arm the timer.
                    # Idle lanes (parked open-arrival lanes, or lanes not
                    # yet started) take the rate change with no accrual,
                    # as set_rate on an idle server does.
                    accrue = is_edge & busy
                    dec = (t - t_last) * rate
                    new_rem = np.maximum(remaining - dec, 0.0)
                    np.copyto(remaining, new_rem, where=accrue)
                    np.copyto(t_last, t, where=accrue)
                    np.copyto(rate, edge_r, where=is_edge)
                    if (rate < 0.0)[is_edge].any():
                        raise BatchInfeasible("edge set a negative rate")
                    live = accrue & (rate > 0.0)
                    eta = t + remaining / rate
                    np.copyto(timer, np.inf, where=accrue)
                    np.copyto(timer, eta, where=live)
                    for i in np.flatnonzero(is_edge).tolist():
                        # edge_t[i] still holds the edge just applied, so
                        # it doubles as the monotonicity floor.
                        self._pull_edge(i, edges, edge_t, edge_r, edge_t[i])

                if is_start.any():
                    # RateServer.submit on an idle server: _start_next now.
                    # The gather indexes job_ptr (0 on first start; the
                    # parked job's slot when an open-arrival lane wakes).
                    nxt = works[lane_ids, np.minimum(job_ptr, max_jobs - 1)]
                    np.copyto(remaining, nxt, where=is_start)
                    np.copyto(t_last, t, where=is_start)
                    np.copyto(submit_t, t, where=is_start)
                    live = is_start & (rate > 0.0)
                    eta = t + remaining / rate
                    np.copyto(timer, eta, where=live)
                    np.logical_or(busy, is_start, out=busy)
                    np.copyto(start_t, np.inf, where=is_start)

                if is_timer.any():
                    # RateServer._complete: accrue, residue recheck, complete.
                    dec = (t - t_last) * rate
                    new_rem = np.maximum(remaining - dec, 0.0)
                    np.copyto(remaining, new_rem, where=is_timer)
                    np.copyto(t_last, t, where=is_timer)
                    residue = is_timer & (remaining > _EPSILON)
                    complete = is_timer & ~residue
                    # Rate is > 0 wherever a timer was armed, so the
                    # re-arm division is well-defined on residue lanes.
                    np.copyto(timer, t + remaining / rate, where=residue)
                    if complete.any():
                        response = t - submit_t
                        latency.push(response, complete)
                        if availability is not None:
                            availability.push(response, complete)
                        size = works[lane_ids, np.minimum(job_ptr, max_jobs - 1)]
                        np.add(work_completed, size, out=work_completed, where=complete)
                        jobs_completed += complete
                        job_ptr += complete
                        job_idx = np.minimum(job_ptr, max_jobs - 1)
                        pending = complete & (job_ptr < n_jobs)
                        if any_arr:
                            # Open-arrival lanes start the next job only if
                            # it has arrived; otherwise the lane parks idle
                            # until the arrival (a future is_start event).
                            arr = arrivals[lane_ids, job_idx]
                            park = pending & has_arr & (arr > t)
                            more = pending & ~park
                        else:
                            park = None
                            more = pending
                        if more.any():
                            nxt = works[lane_ids, job_idx]
                            np.copyto(remaining, nxt, where=more)
                            np.copyto(submit_t, t, where=more)
                            if any_arr:
                                # A queued open-arrival job was submitted at
                                # its arrival; responses measure from there.
                                np.copyto(submit_t, arr, where=more & has_arr)
                            live = more & (rate > 0.0)
                            eta = t + remaining / rate
                            np.copyto(timer, np.inf, where=more)
                            np.copyto(timer, eta, where=live)
                        if park is not None and park.any():
                            np.copyto(start_t, arr, where=park)
                            np.copyto(timer, np.inf, where=park)
                            busy &= ~park
                        ended = complete & ~pending
                        if ended.any():
                            np.copyto(finish, t, where=ended)
                            np.logical_or(done, ended, out=done)
                            np.copyto(timer, np.inf, where=ended)
                            np.copyto(edge_t, np.inf, where=ended)
                            busy &= ~ended
            else:
                raise BatchInfeasible(
                    f"exceeded max_events={self._max_events} fused iterations "
                    f"with {int((~done).sum())} lane(s) still live"
                )

        if availability is not None:
            # Jobs a horizon-cut lane never completed are offered-but-
            # unserved, matching the scalar harness's post-run tally.
            leftover = n_jobs - jobs_completed
            if leftover.any():
                availability.record_unserved_many(leftover)

        return BatchResult(
            start=lane_starts,
            finish=finish,
            jobs_completed=jobs_completed,
            work_completed=work_completed,
            events=events,
            latency=latency,
            availability=availability,
        )

    @staticmethod
    def _pull_edge(
        i: int,
        edges: List[Optional[Iterator[Tuple[float, float]]]],
        edge_t: np.ndarray,
        edge_r: np.ndarray,
        after: float,
    ) -> None:
        """Load lane ``i``'s next edge, or park it at +inf when exhausted."""
        it = edges[i]
        if it is None:
            edge_t[i] = np.inf
            return
        try:
            when, new_rate = next(it)
        except StopIteration:
            edges[i] = None
            edge_t[i] = np.inf
            return
        when = float(when)
        if not (math.isfinite(when) and when >= after):
            raise BatchInfeasible(
                f"edge stream must be nondecreasing and finite; got t={when} after {after}"
            )
        edge_t[i] = when
        edge_r[i] = new_rate
