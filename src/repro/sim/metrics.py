"""Performance metrics for simulated systems.

The paper's benefits argument (Section 3.3) is framed in terms of
*availability* as defined by Gray & Reuter: "the fraction of the offered
load that is processed with acceptable response times."
:class:`AvailabilityMeter` implements exactly that definition; the other
meters provide the throughput/latency/utilization views the experiments
report.

Two recording modes
-------------------

The latency and availability meters default to *exact* mode: every
sample is retained, quantiles are computed over the full sorted sample
set, and every number in EXPERIMENTS.md is reproducible bit for bit.
For production-scale runs whose sample counts would not fit in memory,
both accept ``streaming=True``: an O(1)-memory mode built on
:class:`StreamingMoments` (Welford mean/variance, exact) and
:class:`P2Quantile` (the Jain & Chlamtac P² estimator, approximate).
Counts, means, extremes and SLO fractions stay exact in streaming mode;
only the quantiles are estimates, so keep the default for anything that
feeds a regression-checked table.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .engine import Simulator

__all__ = [
    "ThroughputMeter",
    "LatencyRecorder",
    "UtilizationMeter",
    "AvailabilityMeter",
    "LatencySummary",
    "StreamingMoments",
    "P2Quantile",
]


class StreamingMoments:
    """Welford's online mean/variance: O(1) memory, one pass.

    Numerically stable for arbitrarily long streams — the classic
    sum/sum-of-squares shortcut cancels catastrophically once the mean
    dwarfs the spread, which is exactly the regime a week-long
    production run reaches.  Count, mean, min and max are exact;
    variance matches the two-pass population variance to float rounding.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold another recorder's stream into this one, in place.

        Chan et al.'s parallel-variance combine: the result is as if
        every observation behind ``other`` had been pushed here.  Count,
        min and max are exact; mean and variance agree with a single
        combined stream to float rounding (the batch equivalence tests
        pin 1e-9 against exact recomputation).  Returns ``self`` so lane
        folds chain: ``reduce(lambda a, b: a.merge(b), lanes)``.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * (self.count * other.count / total)
        self.mean = self.mean + delta * (other.count / total)
        self.count = total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def to_dict(self) -> dict:
        """Exact JSON-ready state; :meth:`from_dict` round-trips it.

        Floats are carried verbatim (``repr`` round-trip through JSON
        is exact for finite doubles); infinities from the empty
        recorder survive because the JSON layer emits ``Infinity``
        literals.  Trace run-end/window records embed this, so a replay
        reconstructs scorecard statistics bit-for-bit.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamingMoments":
        """Rebuild a recorder serialized by :meth:`to_dict`."""
        moments = cls()
        moments.count = int(payload["count"])
        moments.mean = float(payload["mean"])
        moments._m2 = float(payload["m2"])
        moments.minimum = float(payload["min"])
        moments.maximum = float(payload["max"])
        return moments

    @property
    def variance(self) -> float:
        """Population variance of the observations so far (0 if empty)."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 if empty)."""
        return math.sqrt(self.variance)


class P2Quantile:
    """The P² (piecewise-parabolic) single-quantile estimator.

    Jain & Chlamtac 1985: five markers track the running q-quantile
    without storing observations.  Until five samples arrive the exact
    order statistics are kept, so small streams report exact values;
    beyond that the marker heights are adjusted with a parabolic
    interpolation and the estimate is approximate (typically within a
    percent or two for smooth distributions).
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float):
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        """Observations folded in so far."""
        if len(self._heights) < 5:
            return len(self._heights)
        return int(self._positions[4])

    def push(self, x: float) -> None:
        """Fold one observation into the estimator."""
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            return
        # Locate the marker cell containing x, clamping the extremes.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while x >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            if (d >= 1.0 and self._positions[i + 1] - self._positions[i] > 1.0) or (
                d <= -1.0 and self._positions[i - 1] - self._positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        n, h = self._positions, self._heights
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        n, h = self._positions, self._heights
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the q-quantile (0.0 if no observations)."""
        heights = self._heights
        if not heights:
            return 0.0
        if len(heights) < 5:
            # Exact small-sample quantile, same interpolation as the
            # exact recorder.
            if len(heights) == 1:
                return heights[0]
            pos = self.q * (len(heights) - 1)
            lo = int(math.floor(pos))
            hi = int(math.ceil(pos))
            frac = pos - lo
            return heights[lo] * (1 - frac) + heights[hi] * frac
        return heights[2]

    def to_dict(self) -> dict:
        """Exact JSON-ready marker state; :meth:`from_dict` round-trips it."""
        return {
            "q": self.q,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "P2Quantile":
        """Rebuild an estimator serialized by :meth:`to_dict`."""
        estimator = cls(float(payload["q"]))
        estimator._heights = [float(x) for x in payload["heights"]]
        estimator._positions = [float(x) for x in payload["positions"]]
        estimator._desired = [float(x) for x in payload["desired"]]
        return estimator

    def _cdf_points(self) -> Tuple[List[float], List[float]]:
        """This estimator's piecewise-linear CDF as (heights, fractions).

        While samples are retained the points are the exact empirical
        CDF under the same convention as :meth:`value`; in marker mode
        marker ``i`` at position ``n_i`` estimates the
        ``(n_i - 1)/(count - 1)`` quantile.
        """
        heights = self._heights
        if len(heights) < 5:
            c = len(heights)
            if c <= 1:
                return list(heights), [1.0] * c
            return list(heights), [k / (c - 1) for k in range(c)]
        c = self._positions[4]
        return sorted(heights), [(n - 1.0) / (c - 1.0) for n in self._positions]

    @classmethod
    def combine(cls, estimators: Sequence["P2Quantile"]) -> float:
        """Lane-combine fallback: one q-quantile over several estimators.

        Exact merging of P² sketches is impossible (markers discard the
        samples), so this is tiered the way the batch engine needs:

        * If every lane still retains its samples (< 5 observations
          each), the pooled retained samples give the **exact** combined
          quantile, same interpolation as the exact recorder.
        * Otherwise the lanes' piecewise-linear marker CDFs are mixed
          with count weights and the mixture is inverted at ``q`` —
          approximate, but monotone in ``q`` and bounded by the pooled
          extremes (properties pinned in ``tests/sim/test_lane_merge.py``).

        All estimators must track the same ``q``.  Returns 0.0 when no
        lane has observations (matching :meth:`value` on empty).
        """
        qs = {e.q for e in estimators}
        if len(qs) > 1:
            raise ValueError(f"estimators track different quantiles: {sorted(qs)}")
        live = [e for e in estimators if e.count > 0]
        if not live:
            return 0.0
        q = live[0].q
        if all(len(e._heights) < 5 for e in live):
            pooled = sorted(h for e in live for h in e._heights)
            # _quantile's v*(1-f) + v*f interpolation can round an ulp
            # past a tied extreme; the pooled-extremes bound is part of
            # this method's contract, so clamp.
            x = LatencyRecorder._quantile(pooled, q)
            return min(max(x, pooled[0]), pooled[-1])
        total = sum(e.count for e in live)
        lanes = [(e.count / total,) + e._cdf_points() for e in live]

        def mixture(x: float) -> float:
            acc = 0.0
            for weight, xs, ps in lanes:
                if x < xs[0]:
                    continue
                if x >= xs[-1]:
                    acc += weight
                    continue
                i = bisect_right(xs, x) - 1
                if xs[i + 1] == xs[i]:
                    acc += weight * ps[i + 1]
                else:
                    span = (x - xs[i]) / (xs[i + 1] - xs[i])
                    acc += weight * (ps[i] + (ps[i + 1] - ps[i]) * span)
            return acc

        candidates = sorted({x for __, xs, __ in lanes for x in xs})
        values = [mixture(x) for x in candidates]
        if q <= values[0]:
            return candidates[0]
        for i in range(1, len(candidates)):
            if values[i] >= q:
                lo, hi = candidates[i - 1], candidates[i]
                flo, fhi = values[i - 1], values[i]
                if fhi <= flo:
                    return hi
                x = lo + (hi - lo) * (q - flo) / (fhi - flo)
                # The interpolation can overshoot hi (or undershoot lo)
                # by an ulp when the slope ratio rounds to ~1; the
                # pooled-extremes bound is part of the contract.
                return min(max(x, lo), hi)
        return candidates[-1]


class ThroughputMeter:
    """Counts completed work and reports rates over elapsed time."""

    def __init__(self, sim: Simulator, name: str = "throughput"):
        self.sim = sim
        self.name = name
        self._start = sim.now
        self.completed_work = 0.0
        self.completed_jobs = 0

    def record(self, work: float) -> None:
        """Record ``work`` units completed now."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        self.completed_work += work
        self.completed_jobs += 1

    def reset(self) -> None:
        """Zero the counters and restart the measurement window."""
        self._start = self.sim.now
        self.completed_work = 0.0
        self.completed_jobs = 0

    @property
    def elapsed(self) -> float:
        """Length of the current measurement window."""
        return self.sim.now - self._start

    def rate(self) -> float:
        """Completed work per unit time over the window (0 if empty)."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed_work / self.elapsed

    def job_rate(self) -> float:
        """Completed jobs per unit time over the window."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed_jobs / self.elapsed


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics for a batch of latencies."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    stddev: float


class LatencyRecorder:
    """Collects per-request latencies and summarises them.

    Exact mode (the default) retains every sample; the sorted view
    needed by :meth:`quantile` / :meth:`summary` is cached and
    invalidated on :meth:`record`, so repeated summary calls over a
    stable sample set cost O(1) instead of re-sorting each time.
    (Mutate samples through :meth:`record` only; writing to ``samples``
    directly bypasses the cache invalidation.)

    ``streaming=True`` switches to O(1) memory for production-scale
    runs: moments via :class:`StreamingMoments` and one
    :class:`P2Quantile` per entry of ``quantiles`` (default the
    p50/p90/p99 that :meth:`summary` reports).  Quantiles are then
    approximate and :meth:`quantile` only answers the tracked ones;
    ``samples`` stays empty.
    """

    def __init__(
        self,
        name: str = "latency",
        streaming: bool = False,
        quantiles: Sequence[float] = (0.50, 0.90, 0.99),
    ):
        self.name = name
        self.streaming = streaming
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._moments: Optional[StreamingMoments] = None
        self._estimators: dict = {}
        if streaming:
            self._moments = StreamingMoments()
            for q in quantiles:
                self._estimators[q] = P2Quantile(q)

    def record(self, latency: float) -> None:
        """Record one request latency."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if self.streaming:
            self._moments.push(latency)
            for estimator in self._estimators.values():
                estimator.push(latency)
            return
        self.samples.append(latency)
        self._sorted = None

    def _ordered(self) -> List[float]:
        """The cached sorted view of the samples."""
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        return self._sorted

    def __len__(self) -> int:
        if self.streaming:
            return self._moments.count
        return len(self.samples)

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        """Linear-interpolated quantile of a pre-sorted list."""
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of recorded latencies.

        In streaming mode only the quantiles named at construction are
        tracked; asking for any other q raises ``ValueError``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.streaming:
            estimator = self._estimators.get(q)
            if estimator is None:
                raise ValueError(
                    f"streaming recorder tracks {sorted(self._estimators)}, "
                    f"not q={q}; list it in `quantiles` at construction"
                )
            return estimator.value()
        return self._quantile(self._ordered(), q)

    def count_over(self, threshold: float) -> int:
        """How many recorded latencies exceed ``threshold``.

        This is the SLO-violation count the campaign scorecards report
        (a request violates a latency SLO when it takes strictly longer
        than the SLO).  Answered with one bisect over the cached sorted
        view; exact mode only -- the streaming recorder does not retain
        samples, so it cannot answer an arbitrary threshold after the
        fact.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if self.streaming:
            raise ValueError(
                "count_over needs retained samples; use streaming=False"
            )
        ordered = self._ordered()
        return len(ordered) - bisect_right(ordered, threshold)

    def summary(self) -> LatencySummary:
        """Full summary of the recorded latencies.

        Exact mode computes every field from the retained samples;
        streaming mode reads the Welford moments (count/mean/extremes
        exact, stddev to float rounding) and the P² estimates for any
        tracked p50/p90/p99 (0.0 for untracked ones).
        """
        if self.streaming:
            moments = self._moments
            if moments.count == 0:
                return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

            def estimate(q: float) -> float:
                estimator = self._estimators.get(q)
                return estimator.value() if estimator is not None else 0.0

            return LatencySummary(
                count=moments.count,
                mean=moments.mean,
                minimum=moments.minimum,
                maximum=moments.maximum,
                p50=estimate(0.50),
                p90=estimate(0.90),
                p99=estimate(0.99),
                stddev=moments.stddev,
            )
        if not self.samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = self._ordered()
        n = len(ordered)
        mean = sum(ordered) / n
        var = sum((x - mean) ** 2 for x in ordered) / n
        return LatencySummary(
            count=n,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=self._quantile(ordered, 0.50),
            p90=self._quantile(ordered, 0.90),
            p99=self._quantile(ordered, 0.99),
            stddev=math.sqrt(var),
        )


class UtilizationMeter:
    """Tracks the busy fraction of a component over time."""

    def __init__(self, sim: Simulator, name: str = "utilization"):
        self.sim = sim
        self.name = name
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._start = sim.now

    def set_busy(self) -> None:
        """Mark the component busy (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.sim.now

    def set_idle(self) -> None:
        """Mark the component idle (idempotent)."""
        if self._busy_since is not None:
            self._busy_total += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self) -> float:
        """Busy fraction since construction (in [0, 1])."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return 0.0
        busy = self._busy_total
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / elapsed)


class AvailabilityMeter:
    """Gray & Reuter availability: fraction of load served within an SLO.

    Each offered request is recorded with its response time (or as
    *unserved* if it never completed); availability is the fraction whose
    response time was at most ``slo``.

    Exact mode (the default) retains every response time so
    :meth:`availability_at` can answer any SLO exactly — via one bisect
    over a cached sorted view, invalidated on :meth:`record`.
    ``streaming=True`` drops the per-request list for O(1) memory:
    :meth:`availability` and the construction-time SLO stay exact, and
    :meth:`availability_at` interpolates over a P² quantile ladder
    (approximate; still monotone in the SLO).
    """

    #: Quantile ladder backing the streaming-mode availability curve.
    _LADDER: Tuple[float, ...] = (0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999)

    def __init__(self, slo: float, name: str = "availability", streaming: bool = False):
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        self.slo = slo
        self.name = name
        self.streaming = streaming
        self.offered = 0
        self.within_slo = 0
        self.unserved = 0
        self.response_times: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._ladder: List[P2Quantile] = (
            [P2Quantile(q) for q in self._LADDER] if streaming else []
        )

    def record(self, response_time: Optional[float]) -> None:
        """Record one offered request.

        ``response_time`` of ``None`` means the request was never served
        (it still counts against availability).
        """
        self.offered += 1
        if response_time is None:
            self.unserved += 1
            if not self.streaming:
                self.response_times.append(float("inf"))
                self._sorted = None
            return
        if response_time < 0:
            raise ValueError(f"response time must be >= 0, got {response_time}")
        if self.streaming:
            for estimator in self._ladder:
                estimator.push(response_time)
        else:
            self.response_times.append(response_time)
            self._sorted = None
        if response_time <= self.slo:
            self.within_slo += 1

    def availability(self) -> float:
        """Fraction of offered load served within the SLO (in [0, 1])."""
        if self.offered == 0:
            return 1.0
        return self.within_slo / self.offered

    def _ordered(self) -> List[float]:
        """The cached sorted view of the response times (exact mode)."""
        if self._sorted is None or len(self._sorted) != len(self.response_times):
            self._sorted = sorted(self.response_times)
        return self._sorted

    def availability_at(self, slo: float) -> float:
        """Availability recomputed against a different SLO.

        Monotone nondecreasing in ``slo`` by construction.  Exact mode
        answers with one bisect over the cached sorted response times;
        streaming mode inverts the P² quantile ladder by linear
        interpolation (exact at 0 served, approximate between ladder
        points, never counting unserved requests as available).
        """
        if self.offered == 0:
            return 1.0
        if not self.streaming:
            return bisect_right(self._ordered(), slo) / self.offered
        served = self.offered - self.unserved
        if served == 0:
            return 0.0
        served_fraction = served / self.offered
        # Independent P² estimators can cross by tiny margins; a running
        # max re-imposes the monotone CDF the interpolation needs.
        values: List[float] = []
        for estimator in self._ladder:
            value = estimator.value()
            values.append(value if not values else max(value, values[-1]))
        quantiles = list(zip(values, self._LADDER))
        # CDF estimate among *served* requests, then scaled by the served
        # fraction so unserved load always counts as unavailable.
        if slo < quantiles[0][0]:
            cdf = 0.0
        elif slo >= quantiles[-1][0]:
            cdf = 1.0
        else:
            cdf = quantiles[0][1]
            for (lo_v, lo_q), (hi_v, hi_q) in zip(quantiles, quantiles[1:]):
                if lo_v <= slo < hi_v:
                    frac = 0.0 if hi_v == lo_v else (slo - lo_v) / (hi_v - lo_v)
                    cdf = lo_q + frac * (hi_q - lo_q)
                    break
                cdf = hi_q
        return cdf * served_fraction
