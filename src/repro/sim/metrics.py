"""Performance metrics for simulated systems.

The paper's benefits argument (Section 3.3) is framed in terms of
*availability* as defined by Gray & Reuter: "the fraction of the offered
load that is processed with acceptable response times."
:class:`AvailabilityMeter` implements exactly that definition; the other
meters provide the throughput/latency/utilization views the experiments
report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .engine import Simulator

__all__ = [
    "ThroughputMeter",
    "LatencyRecorder",
    "UtilizationMeter",
    "AvailabilityMeter",
    "LatencySummary",
]


class ThroughputMeter:
    """Counts completed work and reports rates over elapsed time."""

    def __init__(self, sim: Simulator, name: str = "throughput"):
        self.sim = sim
        self.name = name
        self._start = sim.now
        self.completed_work = 0.0
        self.completed_jobs = 0

    def record(self, work: float) -> None:
        """Record ``work`` units completed now."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        self.completed_work += work
        self.completed_jobs += 1

    def reset(self) -> None:
        """Zero the counters and restart the measurement window."""
        self._start = self.sim.now
        self.completed_work = 0.0
        self.completed_jobs = 0

    @property
    def elapsed(self) -> float:
        """Length of the current measurement window."""
        return self.sim.now - self._start

    def rate(self) -> float:
        """Completed work per unit time over the window (0 if empty)."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed_work / self.elapsed

    def job_rate(self) -> float:
        """Completed jobs per unit time over the window."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed_jobs / self.elapsed


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics for a batch of latencies."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    stddev: float


class LatencyRecorder:
    """Collects per-request latencies and summarises them.

    The sorted view needed by :meth:`quantile` / :meth:`summary` is
    cached and invalidated on :meth:`record`, so repeated summary calls
    over a stable sample set cost O(1) instead of re-sorting each time.
    (Mutate samples through :meth:`record` only; writing to ``samples``
    directly bypasses the cache invalidation.)
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        """Record one request latency."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.samples.append(latency)
        self._sorted = None

    def _ordered(self) -> List[float]:
        """The cached sorted view of the samples."""
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        return self._sorted

    def __len__(self) -> int:
        return len(self.samples)

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        """Linear-interpolated quantile of a pre-sorted list."""
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of recorded latencies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return self._quantile(self._ordered(), q)

    def summary(self) -> LatencySummary:
        """Full summary of the recorded latencies."""
        if not self.samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = self._ordered()
        n = len(ordered)
        mean = sum(ordered) / n
        var = sum((x - mean) ** 2 for x in ordered) / n
        return LatencySummary(
            count=n,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=self._quantile(ordered, 0.50),
            p90=self._quantile(ordered, 0.90),
            p99=self._quantile(ordered, 0.99),
            stddev=math.sqrt(var),
        )


class UtilizationMeter:
    """Tracks the busy fraction of a component over time."""

    def __init__(self, sim: Simulator, name: str = "utilization"):
        self.sim = sim
        self.name = name
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._start = sim.now

    def set_busy(self) -> None:
        """Mark the component busy (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.sim.now

    def set_idle(self) -> None:
        """Mark the component idle (idempotent)."""
        if self._busy_since is not None:
            self._busy_total += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self) -> float:
        """Busy fraction since construction (in [0, 1])."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return 0.0
        busy = self._busy_total
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / elapsed)


class AvailabilityMeter:
    """Gray & Reuter availability: fraction of load served within an SLO.

    Each offered request is recorded with its response time (or as
    *unserved* if it never completed); availability is the fraction whose
    response time was at most ``slo``.
    """

    def __init__(self, slo: float, name: str = "availability"):
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        self.slo = slo
        self.name = name
        self.offered = 0
        self.within_slo = 0
        self.response_times: List[float] = []

    def record(self, response_time: Optional[float]) -> None:
        """Record one offered request.

        ``response_time`` of ``None`` means the request was never served
        (it still counts against availability).
        """
        self.offered += 1
        if response_time is None:
            self.response_times.append(float("inf"))
            return
        if response_time < 0:
            raise ValueError(f"response time must be >= 0, got {response_time}")
        self.response_times.append(response_time)
        if response_time <= self.slo:
            self.within_slo += 1

    def availability(self) -> float:
        """Fraction of offered load served within the SLO (in [0, 1])."""
        if self.offered == 0:
            return 1.0
        return self.within_slo / self.offered

    def availability_at(self, slo: float) -> float:
        """Availability recomputed against a different SLO.

        Monotone nondecreasing in ``slo`` by construction.
        """
        if self.offered == 0:
            return 1.0
        return sum(1 for r in self.response_times if r <= slo) / self.offered
