"""Shared resources for simulated components.

Three primitives cover every component model in the library:

* :class:`Resource` -- a counted FIFO semaphore (SCSI bus ownership, switch
  ports, memory frames).
* :class:`Store` -- a producer/consumer buffer (task queues, switch buffer
  pools).
* :class:`RateServer` -- a FIFO work server whose service *rate* can change
  at any instant.  This is the primitive that makes performance faults
  first-class: a fault injector calls :meth:`RateServer.set_rate` and any
  in-flight job's completion is transparently rescheduled so that exactly
  the remaining work is served at the new rate.  Work is conserved across
  arbitrarily many rate changes (see the property tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from .engine import Callback, Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "RateServer", "JobStats"]

#: Tolerance for floating-point work accounting.
_EPSILON = 1e-9


class Resource:
    """A counted FIFO semaphore.

    ``capacity`` slots; :meth:`request` returns an event that succeeds when
    a slot is granted (immediately if one is free), and :meth:`release`
    frees a slot, granting it to the oldest waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Total number of grants ever issued (for tests/metrics).
        self.grants = 0

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for a slot; the returned event fires when it is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.grants += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free a held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            self.grants += 1
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` blocks (returns a pending event) when the store is full;
    ``get`` blocks when it is empty.  Items are handed to getters in FIFO
    order, which keeps pull-based schedulers fair.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires once it is accepted."""
        event = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(item)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event fires with it."""
        event = self.sim.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                putter, pending = self._putters.popleft()
                self._items.append(pending)
                putter.succeed(pending)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


@dataclass(slots=True)
class JobStats:
    """Completion record returned by :meth:`RateServer.submit` events.

    ``slots=True`` because one of these is allocated per submitted job:
    it drops the per-instance ``__dict__`` (about 40% smaller, measurably
    faster to allocate — see TUTORIAL §8).
    """

    size: float
    submitted_at: float
    started_at: float = 0.0
    completed_at: float = 0.0
    tag: Any = None

    @property
    def wait_time(self) -> float:
        """Time spent queued before service began."""
        return self.started_at - self.submitted_at

    @property
    def service_time(self) -> float:
        """Time spent in service (includes slowdowns mid-service)."""
        return self.completed_at - self.started_at

    @property
    def response_time(self) -> float:
        """Queueing delay plus service time."""
        return self.completed_at - self.submitted_at


@dataclass(slots=True)
class _Job:
    size: float
    remaining: float
    event: Event
    stats: JobStats


class RateServer:
    """FIFO server with a time-varying service rate.

    Jobs carry a *size* in work units; the server drains the head job at
    ``rate`` units per unit time.  :meth:`set_rate` may be called at any
    instant -- including while a job is in service -- and the in-flight
    job's completion is rescheduled so that precisely its remaining work is
    served at the new rate.  A rate of ``0`` models a stalled component
    (thermal recalibration, bus reset, GC pause): the job is frozen until
    the rate becomes positive again.

    This is the mechanism by which *performance faults* act on simulated
    components, and the mechanism by which adaptive policies observe them
    (through job response times).
    """

    def __init__(self, sim: Simulator, rate: float, name: str = "server"):
        if rate < 0:
            raise SimulationError(f"rate must be >= 0, got {rate}")
        self.sim = sim
        self.name = name
        self._rate = float(rate)
        self._queue: Deque[_Job] = deque()
        self._current: Optional[_Job] = None
        self._last_update = sim.now
        #: Cancellable completion timer for the in-flight job (None while
        #: idle or frozen at rate 0).  Exactly one live timer exists at a
        #: time; a rate change cancels and re-arms it instead of leaving a
        #: stale ghost entry in the heap.
        self._timer: Optional[Callback] = None
        self._drain_waiters: list = []
        # Metrics.
        self.jobs_completed = 0
        self.work_completed = 0.0
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0

    # -- public surface ------------------------------------------------------

    @property
    def rate(self) -> float:
        """Current service rate in work units per unit time."""
        return self._rate

    @property
    def queue_length(self) -> int:
        """Jobs waiting behind the one in service."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a job is in service (even at rate 0)."""
        return self._current is not None

    def submit(self, size: float, tag: Any = None) -> Event:
        """Enqueue ``size`` units of work; event fires with :class:`JobStats`."""
        if size <= 0:
            raise SimulationError(f"job size must be > 0, got {size}")
        stats = JobStats(size=size, submitted_at=self.sim.now, tag=tag)
        job = _Job(size=size, remaining=float(size), event=self.sim.event(), stats=stats)
        self._queue.append(job)
        if self._current is None:
            self._start_next()
        return job.event

    def set_rate(self, rate: float) -> None:
        """Change the service rate, rescaling any in-flight job."""
        if rate < 0:
            raise SimulationError(f"rate must be >= 0, got {rate}")
        self._accrue()
        self._rate = float(rate)
        if self._current is not None:
            self._schedule_completion()

    def completion_eta(self) -> Optional[float]:
        """Absolute time the in-service job completes at the current rate.

        ``None`` while idle or frozen at rate 0 (no completion is
        scheduled).  The value can lag the actual completion by float
        residue (see :meth:`_complete`), so callers comparing it against
        deadlines should leave an epsilon of slack.
        """
        if self._current is None or self._rate <= 0:
            return None
        remaining = self._current.remaining
        remaining -= (self.sim.now - self._last_update) * self._rate
        if remaining < 0:
            remaining = 0.0
        return self.sim.now + remaining / self._rate

    def drain(self) -> Event:
        """Event that fires when the server next becomes idle.

        Fires immediately if the server is already idle.  Waiters are
        woken event-driven at the idle transition -- there is no polling
        process behind this (the old implementation spun on zero-length
        timeouts in a corner case).
        """
        event = self.sim.event()
        if self._current is None and not self._queue:
            event.succeed(None)
        else:
            self._drain_waiters.append(event)
        return event

    # -- internals -----------------------------------------------------------

    def _accrue(self) -> None:
        """Charge elapsed work against the in-flight job."""
        now = self.sim.now
        if self._current is not None and self._rate > 0:
            self._current.remaining -= (now - self._last_update) * self._rate
            if self._current.remaining < 0:
                self._current.remaining = 0.0
        self._last_update = now

    def _start_next(self) -> None:
        job = self._queue.popleft()
        job.stats.started_at = self.sim.now
        self._current = job
        self._last_update = self.sim.now
        if self._busy_since is None:
            self._busy_since = self.sim.now
        self._schedule_completion()

    def _schedule_completion(self) -> None:
        timer = self._timer
        if timer is not None:
            timer.cancel()
            self._timer = None
        if self._rate <= 0:
            return  # frozen: completion rescheduled when rate rises
        eta = self._current.remaining / self._rate
        self._timer = self.sim.call_later(eta, self._complete)

    def _complete(self) -> None:
        self._timer = None
        self._accrue()
        job = self._current
        if job.remaining > _EPSILON:
            # Floating-point residue from accrual: finish it off.
            self._schedule_completion()
            return
        self._current = None
        job.stats.completed_at = self.sim.now
        self.jobs_completed += 1
        self.work_completed += job.size
        job.event.succeed(job.stats)
        if self._queue:
            self._start_next()
        else:
            if self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
            if self._drain_waiters:
                waiters = self._drain_waiters
                self._drain_waiters = []
                for waiter in waiters:
                    waiter.succeed(None)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time busy since t=0 (or over ``elapsed``)."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        span = elapsed if elapsed is not None else self.sim.now
        if span <= 0:
            return 0.0
        return min(1.0, busy / span)
