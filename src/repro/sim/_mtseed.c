/* Batched MT19937 seeding, bit-identical to CPython's `random_seed`.
 *
 * `mt_seed_many` runs init_by_array for G generators in one call,
 * advances each by one twist, and writes the first 312 `random()`
 * doubles.  This is the native fast path behind
 * repro.sim.mt.MersenneBank: the algorithm is exactly CPython's
 * (_randommodule.c), restructured in two ways that change cost but not
 * output:
 *
 *   - call overhead is amortized across generators, and
 *   - the seeding recurrence -- a serial dependency chain of ~9 cycles
 *     per step (shift, xor, mul, xor, add), 1247 steps per generator --
 *     is interleaved LANES generators at a time, so the independent
 *     chains fill the pipeline instead of stalling on each other.
 *     Interleaved groups require equal key lengths (the key index j
 *     advances modulo the length); mixed groups fall back to the scalar
 *     loop, which is also what seeds the tail.
 *
 * The pure-numpy fallback in mt.py produces identical output; tests pin
 * both against random.Random.
 *
 * Built on demand with the system C compiler (see repro.sim._native); no
 * Python.h dependency so the only requirement is a working cc.
 */

#include <stdint.h>
#include <string.h>

#define N 624
#define M 397
#define UPPER_MASK 0x80000000u
#define LOWER_MASK 0x7fffffffu
#define LANES 8

/* init_genrand: the scalar seeding init_by_array starts from. */
static void init_genrand(uint32_t *mt, uint32_t s)
{
    int i;
    mt[0] = s;
    for (i = 1; i < N; i++) {
        mt[i] = 1812433253u * (mt[i - 1] ^ (mt[i - 1] >> 30)) + (uint32_t)i;
    }
}

/* One block advance (genrand_uint32's bulk step), in place. */
static void twist(uint32_t *mt)
{
    static const uint32_t mag01[2] = {0u, 0x9908b0dfu};
    uint32_t y;
    int kk;
    for (kk = 0; kk < N - M; kk++) {
        y = (mt[kk] & UPPER_MASK) | (mt[kk + 1] & LOWER_MASK);
        mt[kk] = mt[kk + M] ^ (y >> 1) ^ mag01[y & 1u];
    }
    for (; kk < N - 1; kk++) {
        y = (mt[kk] & UPPER_MASK) | (mt[kk + 1] & LOWER_MASK);
        mt[kk] = mt[kk + (M - N)] ^ (y >> 1) ^ mag01[y & 1u];
    }
    y = (mt[N - 1] & UPPER_MASK) | (mt[0] & LOWER_MASK);
    mt[N - 1] = mt[M - 1] ^ (y >> 1) ^ mag01[y & 1u];
}

static uint32_t temper(uint32_t y)
{
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

/* init_by_array for one generator, starting from the shared base state. */
static void seed_one(const uint32_t *base, const uint32_t *key,
                     int32_t key_len, uint32_t *mt)
{
    int i = 1, j = 0, k;
    memcpy(mt, base, N * sizeof(uint32_t));
    k = (N > key_len) ? N : key_len;
    for (; k; k--) {
        mt[i] = (mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1664525u))
                + key[j] + (uint32_t)j;
        i++;
        j++;
        if (i >= N) {
            mt[0] = mt[N - 1];
            i = 1;
        }
        if (j >= key_len) {
            j = 0;
        }
    }
    for (k = N - 1; k; k--) {
        mt[i] = (mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1566083941u))
                - (uint32_t)i;
        i++;
        if (i >= N) {
            mt[0] = mt[N - 1];
            i = 1;
        }
    }
    mt[0] = 0x80000000u;
}

/* init_by_array + first twist for LANES generators with a common key
 * length, on a lane-major working buffer: word i of lane l lives at
 * work[i][l], so each step of the (strictly sequential) seeding
 * recurrence is one contiguous LANES-wide vector op that the compiler
 * auto-vectorizes.  `mts[l]` receives lane l's post-twist state and
 * `dbls[l]` its first `emit` random() doubles (emitted lane-major too,
 * so tempering vectorizes instead of re-walking each state scalar). */
static void seed_lanes(const uint32_t *base, const uint32_t *keys[LANES],
                       int32_t key_len, uint32_t *mts[LANES],
                       double *dbls[LANES], int32_t emit)
{
    static const uint32_t mag01[2] = {0u, 0x9908b0dfu};
    uint32_t work[N][LANES];
    uint32_t kadd[N][LANES];
    int l, i, j, k, kk;

    for (i = 0; i < N; i++) {
        for (l = 0; l < LANES; l++) {
            work[i][l] = base[i];
        }
    }
    /* Fold the per-step addend key[j] + j into a lane-major table so the
     * inner step is pure vector arithmetic (j is the cyclic key index). */
    for (j = 0; j < key_len; j++) {
        for (l = 0; l < LANES; l++) {
            kadd[j][l] = keys[l][j] + (uint32_t)j;
        }
    }
    /* The previous word is always row i-1 (row 0 is refreshed on wrap),
     * so each step reads one row and writes another -- no scalar carry,
     * which is what lets the compiler emit LANES-wide vector ops. */
    i = 1;
    j = 0;
    k = (N > key_len) ? N : key_len;
    for (; k; k--) {
        const uint32_t *prow = work[i - 1];
        uint32_t *row = work[i];
        for (l = 0; l < LANES; l++) {
            uint32_t p = prow[l];
            row[l] = (row[l] ^ ((p ^ (p >> 30)) * 1664525u)) + kadd[j][l];
        }
        i++;
        j++;
        if (i >= N) {
            for (l = 0; l < LANES; l++) {
                work[0][l] = work[N - 1][l];
            }
            i = 1;
        }
        if (j >= key_len) {
            j = 0;
        }
    }
    for (k = N - 1; k; k--) {
        const uint32_t *prow = work[i - 1];
        uint32_t *row = work[i];
        for (l = 0; l < LANES; l++) {
            uint32_t p = prow[l];
            row[l] = (row[l] ^ ((p ^ (p >> 30)) * 1566083941u)) - (uint32_t)i;
        }
        i++;
        if (i >= N) {
            for (l = 0; l < LANES; l++) {
                work[0][l] = work[N - 1][l];
            }
            i = 1;
        }
    }
    for (l = 0; l < LANES; l++) {
        work[0][l] = 0x80000000u;
    }

    /* Twist in the same lane-major layout: every block step is again a
     * contiguous vector op (twist iterations are independent per word,
     * unlike the seeding chain, but the layout keeps them SIMD too). */
    for (kk = 0; kk < N - 1; kk++) {
        int src = kk < N - M ? kk + M : kk + (M - N);
        for (l = 0; l < LANES; l++) {
            uint32_t y = (work[kk][l] & UPPER_MASK)
                         | (work[kk + 1][l] & LOWER_MASK);
            work[kk][l] = work[src][l] ^ (y >> 1) ^ mag01[y & 1u];
        }
    }
    for (l = 0; l < LANES; l++) {
        uint32_t y = (work[N - 1][l] & UPPER_MASK) | (work[0][l] & LOWER_MASK);
        work[N - 1][l] = work[M - 1][l] ^ (y >> 1) ^ mag01[y & 1u];
    }

    /* Temper + convert while still lane-major: each double needs two
     * adjacent rows, and the l loop over both is one vector op. */
    for (i = 0; i < emit; i++) {
        const uint32_t *rowa = work[2 * i];
        const uint32_t *rowb = work[2 * i + 1];
        for (l = 0; l < LANES; l++) {
            uint32_t a = temper(rowa[l]) >> 5;
            uint32_t b = temper(rowb[l]) >> 6;
            dbls[l][i] = ((double)a * 67108864.0 + (double)b)
                         * (1.0 / 9007199254740992.0);
        }
    }

    for (l = 0; l < LANES; l++) {
        for (i = 0; i < N; i++) {
            mts[l][i] = work[i][l];
        }
    }
}

/* Temper one post-twist state into its first `emit` doubles.
 * random(): (a >> 5) * 2**26 + (b >> 6), scaled by 2**-53. */
static void emit_doubles(const uint32_t *mt, double *dst, int32_t emit)
{
    int i;
    for (i = 0; i < emit; i++) {
        uint32_t a = temper(mt[2 * i]) >> 5;
        uint32_t b = temper(mt[2 * i + 1]) >> 6;
        dst[i] = ((double)a * 67108864.0 + (double)b)
                 * (1.0 / 9007199254740992.0);
    }
}

/* Seed `ngen` generators from 32-bit little-endian keys (CPython's
 * random_seed key format), twist each once, and emit:
 *   states:  ngen x N uint32, C order -- word i of generator g at
 *            states[g*N + i] (the post-twist state; gen-contiguous so
 *            the writes stream, the Python side transposes as a view);
 *   doubles: ngen x emit float64 -- the first `emit` random() outputs
 *            (1 <= emit <= 312; callers that only need a few draws per
 *            generator skip most of the temper/convert work).
 * Key words for generator g are keys[offsets[g] .. offsets[g]+lens[g]).
 */
void mt_seed_many(const uint32_t *keys, const int64_t *offsets,
                  const int32_t *lens, int64_t ngen,
                  uint32_t *states, double *doubles, int32_t emit)
{
    uint32_t base[N];
    int64_t g = 0;
    init_genrand(base, 19650218u);

    while (g + LANES <= ngen) {
        const uint32_t *key_ptrs[LANES];
        uint32_t *mt_ptrs[LANES];
        double *dbl_ptrs[LANES];
        int32_t key_len = lens[g];
        int l, uniform = 1;
        for (l = 0; l < LANES; l++) {
            if (lens[g + l] != key_len) {
                uniform = 0;
                break;
            }
            key_ptrs[l] = keys + offsets[g + l];
            mt_ptrs[l] = states + (g + l) * (int64_t)N;
            dbl_ptrs[l] = doubles + (g + l) * (int64_t)emit;
        }
        if (!uniform) {
            break;
        }
        seed_lanes(base, key_ptrs, key_len, mt_ptrs, dbl_ptrs, emit);
        g += LANES;
    }
    for (; g < ngen; g++) {
        uint32_t *mt = states + g * (int64_t)N;
        seed_one(base, keys + offsets[g], lens[g], mt);
        twist(mt);
        emit_doubles(mt, doubles + g * (int64_t)emit, emit);
    }
}
