"""Discrete-event simulation substrate.

The kernel (:mod:`repro.sim.engine`), shared resources
(:mod:`repro.sim.resources`), deterministic randomness
(:mod:`repro.sim.random`), tracing (:mod:`repro.sim.trace`) and metrics
(:mod:`repro.sim.metrics`) on which every simulated component is built,
plus the vectorized seed-batch engine (:mod:`repro.sim.batch`) that runs
many seeds' timelines as structure-of-arrays lanes.
"""

from .batch import (
    BatchAvailability,
    BatchInfeasible,
    BatchMoments,
    BatchResult,
    LaneProgram,
    SeedBatchRunner,
)
from .engine import (
    AllOf,
    AnyOf,
    Callback,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .metrics import (
    AvailabilityMeter,
    LatencyRecorder,
    LatencySummary,
    P2Quantile,
    StreamingMoments,
    ThroughputMeter,
    UtilizationMeter,
)
from .fluid import (
    FluidBlock,
    FluidRamp,
    FluidServer,
    fifo_completions,
    fifo_uniform_ramps,
)
from .mt import BankRandom, MersenneBank
from .random import RandomStreams, derive_seed, derive_seeds
from .resources import JobStats, RateServer, Resource, Store
from .trace import Counter, TimeSeries, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "RateServer",
    "JobStats",
    "FluidServer",
    "FluidBlock",
    "FluidRamp",
    "fifo_completions",
    "fifo_uniform_ramps",
    "RandomStreams",
    "derive_seed",
    "derive_seeds",
    "MersenneBank",
    "BankRandom",
    "Tracer",
    "TraceRecord",
    "TimeSeries",
    "Counter",
    "ThroughputMeter",
    "LatencyRecorder",
    "LatencySummary",
    "UtilizationMeter",
    "AvailabilityMeter",
    "StreamingMoments",
    "P2Quantile",
    "SeedBatchRunner",
    "LaneProgram",
    "BatchResult",
    "BatchMoments",
    "BatchAvailability",
    "BatchInfeasible",
]
