"""Lazy build/load of the optional native MT seeding helper.

:func:`load` compiles ``_mtseed.c`` with the system C compiler the first
time it is called and returns a ctypes handle to the shared library, or
``None`` when no compiler is available, the build fails, or the
``REPRO_NO_NATIVE`` environment variable is set.  Callers must treat
``None`` as "use the pure-numpy path" -- the native helper is a speedup,
never a requirement, and both paths are bit-identical (pinned in
``tests/sim/test_mt.py``).

The shared object is cached next to this module (``_build/``), keyed by
a hash of the C source so edits trigger a rebuild.  Everything stays
inside the package directory; no global state is touched.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
from pathlib import Path
from typing import Optional

__all__ = ["load"]

_SOURCE = Path(__file__).with_name("_mtseed.c")

# Sentinel distinguishing "never tried" from "tried and failed (None)".
_UNSET = object()
_lib: object = _UNSET


def _build_dir() -> Path:
    return Path(__file__).with_name("_build")


def _compile() -> Optional[ctypes.CDLL]:
    source = _SOURCE.read_text()
    compiler = os.environ.get("CC", "cc")
    # -O3 + -march=native: the lane-major seeding loops are written to
    # auto-vectorize, and the library is always built on the machine that
    # runs it, so targeting the host ISA is safe; retry without the arch
    # flag for compilers that reject it.
    attempts = [
        ["-O3", "-march=native", "-shared", "-fPIC"],
        ["-O3", "-shared", "-fPIC"],
    ]
    target = None
    for flags in attempts:
        digest = hashlib.sha256(
            "\0".join([source, compiler] + flags).encode()
        ).hexdigest()[:16]
        suffix = "dll" if sys.platform == "win32" else "so"
        candidate = _build_dir() / f"_mtseed-{digest}.{suffix}"
        if candidate.exists():
            target = candidate
            break
        candidate.parent.mkdir(parents=True, exist_ok=True)
        tmp = candidate.with_suffix(f".{suffix}.tmp{os.getpid()}")
        cmd = [compiler, *flags, "-o", str(tmp), str(_SOURCE)]
        result = subprocess.run(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, timeout=60
        )
        if result.returncode == 0 and tmp.exists():
            # Atomic publish so concurrent builders never load a
            # half-written object; losing the race is fine, both
            # artifacts are identical.
            os.replace(tmp, candidate)
            target = candidate
            break
    if target is None:
        return None
    lib = ctypes.CDLL(str(target))
    lib.mt_seed_many.restype = None
    lib.mt_seed_many.argtypes = [
        ctypes.c_void_p,  # keys (uint32*)
        ctypes.c_void_p,  # offsets (int64*)
        ctypes.c_void_p,  # lens (int32*)
        ctypes.c_int64,  # ngen
        ctypes.c_void_p,  # states out (uint32*, N x ngen)
        ctypes.c_void_p,  # doubles out (float64*, ngen x emit)
        ctypes.c_int32,  # emit: doubles per generator (1..312)
    ]
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The native helper, building it on first use; ``None`` if unavailable."""
    global _lib
    if _lib is _UNSET:
        if os.environ.get("REPRO_NO_NATIVE"):
            _lib = None
        else:
            try:
                _lib = _compile()
            except (OSError, subprocess.SubprocessError, ValueError):
                _lib = None
    return _lib  # type: ignore[return-value]
