"""Fluid (analytic) companion to :class:`~repro.sim.resources.RateServer`.

The discrete kernel simulates every job; that caps a campaign run at
~10^5-10^6 requests.  Between fault transitions, though, nothing about a
FIFO rate server is discrete: with a *piecewise-constant* service rate
and arrivals spread over a segment, the backlog is piecewise linear in
time, so completion counts, queue lengths and per-arrival response times
all have closed forms.  :class:`FluidServer` evolves those quantities for
a whole bank of servers at once (numpy structure-of-arrays), one
``advance`` call per segment instead of one heap event per job.

The contract that makes the hybrid engine trustworthy:

* **Work conservation at every segment boundary** -- after any sequence
  of ``advance``/``set_rate`` calls, ``arrived_work`` splits exactly
  into ``completed_work`` plus ``backlog`` (per server, within float
  accumulation slack).  The property tests in ``tests/sim/test_fluid.py``
  drive random segment sequences against this invariant.
* **Exactness in the underloaded regime** -- while the backlog is zero
  and stays zero (inflow <= rate), every arrival's response time is
  exactly ``work / rate``: the same value the discrete kernel computes.
  This is the regime the :class:`~repro.core.hybrid.HybridRunner`
  restricts itself to; overloaded segments are a *fluid approximation*
  (arrival mass spread uniformly over the segment) and are reported as
  latency blocks interpolated along the piecewise-linear backlog.

Rates only change *between* segments (``set_rate`` then ``advance``),
mirroring how the hybrid runner brackets every fault transition with an
exact discrete window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "FluidBlock",
    "FluidRamp",
    "FluidServer",
    "fifo_completions",
    "fifo_uniform_ramps",
]

#: Backlog below this is treated as empty (float accrual residue).
_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class FluidBlock:
    """A group of fluid-resolved jobs sharing one response-time value.

    ``count`` jobs that arrived at server ``server`` during one segment
    and (analytically) experienced ``latency`` seconds of response time.
    Blocks are the scale-friendly latency representation: a million
    fault-free arrivals collapse into a single block instead of a
    million samples.
    """

    server: int
    latency: float
    count: int


@dataclass(frozen=True, slots=True)
class FluidRamp:
    """``count`` fluid-resolved jobs whose response times form a ramp.

    Job ``j`` (0-based within the ramp) saw response time
    ``first + step * j``.  A :class:`FluidBlock` is the ``step == 0``
    special case; a saturated FIFO run compresses into one ramp with
    ``step = service - spacing`` instead of one sample per job, so the
    queueing regime keeps the scale-friendly memory story.
    """

    server: int
    first: float
    step: float
    count: int

    def values(self) -> np.ndarray:
        """Materialize the per-job response times (length ``count``)."""
        return self.first + self.step * np.arange(self.count, dtype=np.float64)


def fifo_uniform_ramps(
    a0: float,
    spacing: float,
    count: int,
    work: float,
    rate: float,
    busy_until: float = 0.0,
) -> List[tuple]:
    """Exact FIFO response times for equally-spaced deterministic arrivals.

    ``count`` jobs of ``work`` units arrive at ``a0, a0 + spacing, ...``
    at a FIFO server of constant ``rate`` that is busy with earlier
    obligations until ``busy_until``.  With ``s = work / rate`` the
    response recurrence ``D[j] = max(0, D[j-1] - spacing) + s`` has a
    closed form: writing ``x[j] = D[j] - s`` and ``c = s - spacing``,

    * ``x[0] = max(0, busy_until - a0)``;
    * while the server stays busy, ``x[j] = x[0] + j * c`` (an arithmetic
      ramp: saturated if ``c >= 0``, draining if ``c < 0``);
    * once a draining queue empties, ``x[j] = 0`` (the flat underloaded
      tail at exactly ``s``).

    Returns at most two ``(first, step, count)`` segments covering all
    ``count`` responses in arrival order.  These are the *same float
    values* the discrete kernel produces up to one accumulation ulp per
    chained completion, which is what lets the hybrid engine stay inside
    its 1e-9 equivalence budget in the queueing regime.
    """
    if count <= 0:
        return []
    if not rate > 0.0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if not work > 0.0:
        raise ValueError(f"work must be > 0, got {work}")
    if count > 1 and not spacing > 0.0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    s = work / rate
    x0 = busy_until - a0
    if x0 < 0.0:
        x0 = 0.0
    c = s - spacing
    if x0 <= 0.0 and c <= 0.0:
        # Never queued: the underloaded flat regime.
        return [(s, 0.0, count)]
    if c >= 0.0:
        # Saturated (or critically loaded with initial backlog): the
        # busy period never ends within this batch.
        return [(s + x0, c, count)]
    # Draining: the ramp shrinks by ``spacing - s`` per arrival until the
    # initial backlog is gone, then the tail is flat at ``s``.
    n_ramp = int(math.ceil(x0 / -c))
    while n_ramp > 0 and x0 + (n_ramp - 1) * c <= 0.0:
        n_ramp -= 1
    if n_ramp >= count:
        return [(s + x0, c, count)]
    out: List[tuple] = []
    if n_ramp > 0:
        out.append((s + x0, c, n_ramp))
    out.append((s, 0.0, count - n_ramp))
    return out


def fifo_completions(
    arrivals: Sequence[float],
    works: Sequence[float],
    rate: float,
    busy_until: float = 0.0,
) -> np.ndarray:
    """Vectorized FIFO completion times for arbitrary arrival schedules.

    The general closed form behind :func:`fifo_uniform_ramps` (which
    exploits uniform spacing to stay O(1) in memory): with cumulative
    service ``P[k] = sum(works[:k+1]) / rate``, job ``k`` completes at

    ``C[k] = P[k] + max(busy_until, max_{i <= k}(arrivals[i] - P[i-1]))``

    -- the inner max is the start of the busy period job ``k`` belongs
    to.  Used as the oracle-side reference in the property tests; the
    hybrid runner itself uses the ramp form.
    """
    a = np.asarray(arrivals, dtype=np.float64)
    w = np.asarray(works, dtype=np.float64)
    if a.ndim != 1 or a.shape != w.shape:
        raise ValueError("arrivals and works must be matching 1-d sequences")
    if a.size == 0:
        return np.empty(0, dtype=np.float64)
    if not rate > 0.0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if (np.diff(a) < 0).any():
        raise ValueError("arrivals must be nondecreasing")
    if not (w > 0).all():
        raise ValueError("works must be > 0")
    cum = np.cumsum(w) / rate
    prev = np.empty_like(cum)
    prev[0] = 0.0
    prev[1:] = cum[:-1]
    busy_start = np.maximum.accumulate(a - prev)
    return cum + np.maximum(busy_until, busy_start)


class FluidServer:
    """Closed-form queue evolution for a bank of FIFO rate servers.

    ``advance(t1, arrivals, job_work)`` moves virtual time from the
    current boundary to ``t1`` with ``arrivals[i]`` jobs of ``job_work``
    units landing on server ``i``, spread uniformly over the segment
    (the open-loop fluid limit).  Backlog evolves as

    ``B(t) = max(0, B0 + (inflow - rate) * t)``

    per server -- piecewise linear with at most one kink (the drain
    instant) -- and a job arriving at offset ``t`` sees response time
    ``(B(t) + job_work) / rate``.  The returned :class:`FluidBlock` list
    quantizes each linear latency ramp into ``resolution`` blocks whose
    integer counts sum exactly to the arrivals.
    """

    def __init__(self, rates: Sequence[float], start: float = 0.0,
                 resolution: int = 8):
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.rate = np.asarray(rates, dtype=float).copy()
        if self.rate.ndim != 1 or self.rate.size == 0:
            raise ValueError("rates must be a non-empty 1-d sequence")
        if (self.rate < 0).any():
            raise ValueError("rates must be >= 0")
        n = self.rate.size
        self.now = float(start)
        self.resolution = resolution
        #: Outstanding (queued + in-service) work per server.
        self.backlog = np.zeros(n)
        #: Lifetime arrival/completion tallies (the conservation triple).
        self.arrived_jobs = np.zeros(n, dtype=np.int64)
        self.arrived_work = np.zeros(n)
        self.completed_work = np.zeros(n)
        self.segments = 0

    def __len__(self) -> int:
        return self.rate.size

    # -- rate surface (piecewise-constant between segments) ---------------------

    def set_rate(self, index: int, rate: float) -> None:
        """Change one server's rate, effective for subsequent segments."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate[index] = rate

    def set_rates(self, rates: Sequence[float]) -> None:
        """Replace every server's rate (e.g. re-seeding from discrete state)."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.rate.shape:
            raise ValueError(f"expected {self.rate.size} rates, got {rates.size}")
        if (rates < 0).any():
            raise ValueError("rates must be >= 0")
        self.rate = rates.copy()

    # -- queries -----------------------------------------------------------------

    def queue_work(self) -> np.ndarray:
        """Outstanding work per server at the current boundary."""
        return self.backlog.copy()

    def conservation_error(self) -> float:
        """Largest per-server violation of arrived = completed + queued."""
        return float(
            np.max(np.abs(self.arrived_work - self.completed_work - self.backlog))
        )

    # -- the closed-form segment step --------------------------------------------

    def advance(self, t1: float, arrivals: Sequence[int],
                job_work: float) -> List[FluidBlock]:
        """Evolve every server to time ``t1``; returns the latency blocks.

        ``arrivals[i]`` jobs of ``job_work`` units land on server ``i``,
        uniformly over ``[now, t1)``.  Zero-arrival servers still drain
        their backlog.  Jobs arriving at a rate-0 server are reported as
        ``inf``-latency blocks (they never complete while the rate holds).
        """
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if arrivals.shape != self.rate.shape:
            raise ValueError(
                f"expected {self.rate.size} arrival counts, got {arrivals.size}"
            )
        if (arrivals < 0).any():
            raise ValueError("arrival counts must be >= 0")
        dt = t1 - self.now
        if dt < 0:
            raise ValueError(f"t1={t1} is before the current boundary {self.now}")
        any_arrivals = bool(arrivals.any())
        if any_arrivals and job_work <= 0:
            raise ValueError(f"job_work must be > 0, got {job_work}")
        if dt == 0:
            if any_arrivals:
                raise ValueError("arrivals need elapsed time (dt == 0)")
            return []

        rate = self.rate
        b0 = self.backlog
        inflow_work = arrivals * float(job_work)
        inflow = inflow_work / dt
        net = inflow - rate
        # Drain instant per server: when a shrinking backlog hits zero.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_empty = np.where(net < 0, b0 / (rate - inflow), np.inf)
            busy = np.minimum(dt, t_empty)
            # The still-filling branch leaves t_empty at inf; the masked
            # arm then evaluates inflow * -inf = nan before np.where
            # discards it, so invalid stays suppressed here too.
            completed = rate * busy + np.where(
                t_empty < dt, inflow * (dt - t_empty), 0.0
            )
        b1 = b0 + inflow_work - completed
        if (b1 < -1e-6).any():
            raise ValueError("fluid backlog went negative; inconsistent segment")
        clipped = np.maximum(b1, 0.0)
        # Keep conservation exact through the clip: the (float-residue)
        # difference is charged to completions.
        completed = completed + (b1 - clipped)

        blocks = self._latency_blocks(arrivals, b0, net, t_empty, dt, job_work)

        self.backlog = clipped
        self.arrived_jobs += arrivals
        self.arrived_work += inflow_work
        self.completed_work += completed
        self.now = float(t1)
        self.segments += 1
        return blocks

    def _latency_blocks(self, arrivals, b0, net, t_empty, dt, job_work):
        """Quantize each server's piecewise-linear response ramp."""
        blocks: List[FluidBlock] = []
        for idx in np.nonzero(arrivals)[0]:
            count = int(arrivals[idx])
            mu = self.rate[idx]
            if mu <= 0:
                blocks.append(FluidBlock(int(idx), float("inf"), count))
                continue
            base = b0[idx]
            slope = net[idx]
            cut = float(min(dt, max(0.0, t_empty[idx])))
            # At most two linear pieces: backlog draining/growing until
            # the drain instant, then empty.
            pieces = []
            # Denormal-tiny rates overflow these ratios to inf; the
            # finiteness guard below turns such pieces into inf blocks.
            with np.errstate(over="ignore", invalid="ignore"):
                if cut > 0:
                    pieces.append(
                        (0.0, cut, (base + job_work) / mu,
                         (base + slope * cut + job_work) / mu)
                    )
                if cut < dt:
                    pieces.append((cut, dt, job_work / mu, job_work / mu))
            taken = 0
            for lo, hi, r_lo, r_hi in pieces:
                if not (np.isfinite(r_lo) and np.isfinite(r_hi)):
                    # A denormal-tiny rate overflows the ratio: at float
                    # precision the server is indistinguishable from
                    # stalled, so the piece resolves as one inf block.
                    cum = count if hi >= dt else int(round(count * hi / dt))
                    if cum > taken:
                        blocks.append(
                            FluidBlock(int(idx), float("inf"), cum - taken)
                        )
                        taken = cum
                    continue
                flat = abs(r_hi - r_lo) <= 1e-12 * max(1.0, abs(r_lo))
                subdivisions = 1 if flat else self.resolution
                for j in range(subdivisions):
                    t_hi = lo + (hi - lo) * (j + 1) / subdivisions
                    # Divide before scaling: near-max-float ramps must
                    # not overflow on the intermediate product.
                    r_mid = r_lo + (r_hi - r_lo) / subdivisions * (j + 0.5)
                    # Cumulative rounding: block counts sum exactly to
                    # the integer arrivals, whatever the piece geometry.
                    cum = count if t_hi >= dt else int(round(count * t_hi / dt))
                    if cum > taken:
                        blocks.append(FluidBlock(int(idx), float(r_mid), cum - taken))
                        taken = cum
            if taken < count:  # pragma: no cover - float-edge safety net
                blocks.append(FluidBlock(int(idx), float(job_work / mu), count - taken))
        return blocks
