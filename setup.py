"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` editable path).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
