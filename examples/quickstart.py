#!/usr/bin/env python
"""Quickstart: the paper's Section 3.2 example in ~40 lines.

Build a RAID-10 array of simulated disks, make one disk a "performance
fault" (it works, just slower -- the fail-stutter case fail-stop designs
cannot express), and write the same data under the paper's three
designs.  Watch uniform striping collapse to N*b while adaptive striping
holds (N-1)*B + b.

Run:  python examples/quickstart.py
"""

from repro.core import System
from repro.storage import (
    AdaptiveStriping,
    Disk,
    DiskParams,
    ProportionalStriping,
    Raid1Pair,
    UniformStriping,
    uniform_geometry,
)

N_PAIRS = 4  # the paper's "2N disks" with N mirror pairs
B = 5.5  # healthy disk bandwidth, MB/s (a 5400-RPM Hawk)
SLOW_FACTOR = 0.5  # the faulty disk delivers half its spec
D_BLOCKS = 400  # data blocks to write


def build_pairs(sim):
    """2*N_PAIRS disks, paired into RAID-1 mirrors."""
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    pairs = []
    for i in range(N_PAIRS):
        d1 = Disk(sim, f"disk{2*i}", uniform_geometry(100_000, B), params)
        d2 = Disk(sim, f"disk{2*i+1}", uniform_geometry(100_000, B), params)
        pairs.append(Raid1Pair(sim, d1, d2))
    return pairs


def measure(policy, label):
    """Write D_BLOCKS under `policy` with one performance-faulty disk."""
    sim = System()  # every Disk/Raid1Pair self-registers by name
    pairs = build_pairs(sim)
    # The fault: one disk of the last pair runs at half speed.  It has
    # NOT failed -- a fail-stop model has no name for this state.  The
    # registry addresses it by name; no need to thread object references.
    slow = sim.components.get(f"disk{2 * N_PAIRS - 2}")
    slow.set_slowdown("manufacturing-skew", SLOW_FACTOR)
    result = sim.run(until=policy.run(sim, pairs, D_BLOCKS, block_value=1))
    print(
        f"  {label:<14} {result.throughput_mb_s:6.2f} MB/s   "
        f"blocks per pair: {result.blocks_per_pair}"
    )
    return result.throughput_mb_s


def main():
    b = B * SLOW_FACTOR
    print(f"RAID-10, {N_PAIRS} mirror pairs at {B} MB/s, one disk at {b} MB/s")
    print(f"  paper's predictions: uniform = N*b = {N_PAIRS * b:.1f}; "
          f"aware = (N-1)*B + b = {(N_PAIRS - 1) * B + b:.2f}\n")
    uniform = measure(UniformStriping(), "uniform")
    proportional = measure(ProportionalStriping(), "proportional")
    adaptive = measure(AdaptiveStriping(), "adaptive")
    print(
        f"\nfail-stutter-aware striping recovered "
        f"{adaptive / uniform:.2f}x over the fail-stop design"
    )
    assert adaptive > 1.5 * uniform
    assert abs(proportional - adaptive) / adaptive < 0.1


if __name__ == "__main__":
    main()
