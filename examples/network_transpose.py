#!/usr/bin/env python
"""CM-5-style all-to-all transpose with one lagging receiver + AIMD.

Two demonstrations from the paper's networking evidence:

1. Flow-control backpressure (Section 2.1.3): a single receiver that
   drains at a fraction of link rate backs packets up into the switch's
   shared buffer pool, and the *entire* transpose slows by ~3x.
2. The paper's prescription (Section 4): TCP-style adaptation.  An AIMD
   sender pointed at a stuttering link backs off during episodes and
   re-probes afterwards, tracking the link's usable capacity instead of
   flooding it.

Run:  python examples/network_transpose.py
"""

from repro.core import AimdController, AimdSender
from repro.network import Link, Switch, SwitchConfig, all_to_all_transpose
from repro.sim import Simulator

N_NODES = 8


def transpose_throughput(slow_receiver_factor=None):
    sim = Simulator()
    switch = Switch(
        sim,
        SwitchConfig(
            n_ports=N_NODES,
            port_rate=10.0,
            core_rate=10.0 * N_NODES,
            receiver_rate=10.0,
            buffer_packets=4 * N_NODES,
        ),
    )
    if slow_receiver_factor is not None:
        switch.receivers[3].set_slowdown("lagging-node", slow_receiver_factor)
    result = sim.run(until=all_to_all_transpose(sim, switch, size_per_pair_mb=2.0))
    return result.throughput_mb_s


def aimd_demo():
    """Stream 150 MB over a link that stutters to 5% for two seconds."""
    sim = Simulator()
    link = Link(sim, "uplink", bandwidth=10.0)
    sim.schedule(4.0, link.set_slowdown, "stutter", 0.05)
    sim.schedule(6.0, link.clear_slowdown, "stutter")
    sender = AimdSender(
        sim,
        link,
        AimdController(initial_rate=5.0, increase=0.5, decrease=0.5, max_rate=40.0),
        chunk_mb=1.0,
    )
    result = sim.run(until=sender.send(150.0))
    return result


def main():
    healthy = transpose_throughput()
    print(f"{N_NODES}-node transpose, all receivers healthy: {healthy:.1f} MB/s")
    for factor in (0.5, 0.33, 0.2):
        slowed = transpose_throughput(factor)
        print(f"  one receiver at {factor:4.2f} of link rate: {slowed:5.1f} MB/s "
              f"({healthy / slowed:.1f}x slower overall)")
    collapsed = transpose_throughput(0.33)
    assert healthy / collapsed > 2.0  # the paper's ~3x shape

    print("\nAIMD sender over a stuttering 10 MB/s link:")
    result = aimd_demo()
    print(f"  delivered {result.sent_mb:.0f} MB in {result.duration:.1f}s "
          f"({result.throughput_mb_s:.1f} MB/s), "
          f"{result.congestions} backoffs")
    lowest = min(rate for __, rate in result.rate_trace)
    final = result.rate_trace[-1][1]
    print(f"  offered rate dipped to {lowest:.1f} MB/s during the stutter, "
          f"recovered to {final:.1f} MB/s")
    assert result.congestions > 0 and final > lowest


if __name__ == "__main__":
    main()
