#!/usr/bin/env python
"""NOW-Sort on a cluster with a CPU hog: four scheduling policies.

The paper's motivating war story (Section 2.2.2): "The performance of
NOW-Sort is quite sensitive to various disturbances...  A node with
excess CPU load reduces global sorting performance by a factor of two."

This example runs the same 320 MB parallel external sort under the four
work-distribution policies in the library while one of eight nodes
carries a competing CPU-bound process, then repeats the nastier case of
a node that *stalls* mid-sort (where only hedging helps).

Run:  python examples/cluster_sort.py
"""

from repro.cluster import CpuHog, SortConfig, make_sort_cluster, run_sort
from repro.sim import Simulator

CONFIG = SortConfig(total_mb=320.0, chunk_mb=8.0)
N_NODES = 8


def sort_with_hog(mode, hog_share=0.5):
    sim = Simulator()
    nodes = make_sort_cluster(sim, N_NODES)
    if hog_share:
        CpuHog(share=hog_share).attach(sim, nodes[0])
    result = sim.run(until=run_sort(sim, nodes, CONFIG, mode=mode, hedge_after=5.0))
    return result


def sort_with_stall(mode):
    """Node 7 slows to a crawl two seconds into the sort."""
    sim = Simulator()
    nodes = make_sort_cluster(sim, N_NODES)
    sim.schedule(2.0, nodes[7].cpu.set_slowdown, "wedge", 0.002)
    result = sim.run(until=run_sort(sim, nodes, CONFIG, mode=mode, hedge_after=3.0))
    return result


def main():
    healthy = sort_with_hog("static", hog_share=None)
    print(f"{N_NODES}-node sort of {CONFIG.total_mb:.0f} MB; healthy cluster: "
          f"{healthy.throughput_mb_s:.1f} MB/s\n")

    print("one node with a CPU hog (50% share):")
    for mode in ("static", "proportional", "pull", "hedged"):
        result = sort_with_hog(mode)
        slowdown = healthy.throughput_mb_s / result.throughput_mb_s
        print(f"  {mode:<13} {result.throughput_mb_s:6.1f} MB/s  "
              f"({slowdown:.2f}x slower than healthy; "
              f"hogged node did {result.chunks_per_node[0]} of "
              f"{sum(result.chunks_per_node)} chunks)")

    print("\none node nearly stalls mid-sort (the straggler case):")
    for mode in ("pull", "hedged"):
        result = sort_with_stall(mode)
        extra = f", {result.duplicates} hedge duplicates" if mode == "hedged" else ""
        print(f"  {mode:<13} {result.throughput_mb_s:6.1f} MB/s"
              f"  (node 7 completed {result.chunks_per_node[7]} chunks{extra})")

    static_hogged = sort_with_hog("static")
    pulled = sort_with_hog("pull")
    assert healthy.throughput_mb_s / static_hogged.throughput_mb_s > 1.5
    assert pulled.throughput_mb_s > 1.4 * static_hogged.throughput_mb_s


if __name__ == "__main__":
    main()
