#!/usr/bin/env python
"""Fail-stutter-tolerant storage under a realistic fault soup (WiND-style).

The paper closes by pointing at the Wisconsin Network Disks project:
adaptive software techniques for "robust and manageable storage."  This
example assembles that storage node from the library's pieces:

* a RAID-10 array on a SCSI chain that suffers real-world faults --
  a statically slow disk (fault masking), thermal-recalibration stalls,
  and chain-wide bus resets;
* a FailStutterSystem front end with rate estimators, an EWMA detector,
  the persistent-only performance-state registry, and the correctness
  watchdog T;
* an open-loop client whose availability (Gray & Reuter) is measured
  under a fail-stop router vs. the fail-stutter router.

Run:  python examples/adaptive_storage.py
"""

import random

from repro.core import (
    FailStutterSystem,
    NotificationPolicy,
    PerformanceStateRegistry,
    RoundRobinRouter,
    WeightedRouter,
)
from repro.faults import (
    Exponential,
    Fixed,
    IntermittentOffline,
    PerformanceSpec,
    StaticSkew,
    Uniform,
)
from repro.sim import AvailabilityMeter, Simulator
from repro.storage import ErrorMix, ScsiBus, Disk, DiskParams, uniform_geometry

N_SERVERS = 4  # storage bricks fronted by the router
SLO = 0.6  # seconds: "acceptable response time"
N_REQUESTS = 800


def build_brick_pool(sim, seed):
    """Four storage bricks, each one simulated disk with its own faults."""
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    disks = [
        Disk(sim, f"brick{i}", uniform_geometry(500_000, 5.5), params)
        for i in range(N_SERVERS)
    ]
    rng = random.Random(seed)
    # Brick 1 was sold as identical but fault-masking makes it 20% slower.
    StaticSkew(0.8).attach(sim, disks[1], rng)
    # Brick 2 thermally recalibrates now and then (short full stalls).
    IntermittentOffline(
        interarrival=Exponential(25.0), duration=Uniform(0.5, 2.0)
    ).attach(sim, disks[2], rng)
    # The whole chain shares a SCSI bus that resets occasionally.
    bus = ScsiBus(
        sim,
        disks,
        error_interarrival=Exponential(40.0),
        reset_duration=Fixed(2.0),
        mix=ErrorMix(timeout=0.5, parity=0.3, network=0.1, other=0.1),
        rng=rng,
    )
    bus.start()
    return disks, bus


def run_policy(router, use_watchdog, seed=101):
    sim = Simulator()
    disks, bus = build_brick_pool(sim, seed)
    spec = PerformanceSpec(
        nominal_rate=1.0,  # disks serve "nominal service seconds"
        tolerance=0.3,
        correctness_timeout=8.0 if use_watchdog else None,
    )
    registry = PerformanceStateRegistry(
        sim, policy=NotificationPolicy.PERSISTENT_ONLY, persistence_time=5.0
    )
    system = FailStutterSystem(
        sim, disks, spec, router=router, registry=registry, use_watchdog=use_watchdog
    )
    meter = AvailabilityMeter(slo=SLO)
    rng = random.Random(seed + 1)

    def one_request():
        issued = sim.now
        try:
            # A request is ~0.18 s of nominal disk service.
            yield system.submit(0.18)
        except Exception:
            meter.record(None)
            return
        meter.record(sim.now - issued)

    def client():
        for __ in range(N_REQUESTS):
            sim.process(one_request())
            yield sim.timeout(rng.expovariate(1.0 / 0.07))

    sim.process(client())
    sim.run(until=N_REQUESTS * 0.07 * 6)
    while meter.offered < N_REQUESTS:
        meter.record(None)
    return meter, registry, bus


def main():
    print(f"storage pool: {N_SERVERS} bricks; one skewed, one recalibrating, "
          f"shared bus resets; SLO = {SLO}s\n")
    rr_meter, __, __ = run_policy(RoundRobinRouter(), use_watchdog=False)
    print(f"  fail-stop router (round-robin):   availability = {rr_meter.availability():.3f}")
    fs_meter, registry, bus = run_policy(WeightedRouter(), use_watchdog=True)
    print(f"  fail-stutter router (weighted+T): availability = {fs_meter.availability():.3f}")
    print(f"\nperformance-state registry after the run:")
    print(f"  degraded: {registry.degraded_components()}")
    print(f"  stopped:  {registry.stopped_components()}")
    print(f"  notifications pushed: {registry.notifications_sent} "
          f"(persistent-only policy)")
    print(f"  bus resets endured: {bus.reset_count}")
    assert fs_meter.availability() >= rr_meter.availability()


if __name__ == "__main__":
    main()
