#!/usr/bin/env python
"""Replicated DHT with stop-the-world GC on one brick (Gribble's DDS).

Section 2.2.1: "untimely garbage collection causes one node to fall
behind its mirror in a replicated update.  The result is that one
machine over-saturates and thus is the bottleneck."

An insert-heavy put stream runs against a four-pair replicated hash
table while one brick pauses for GC once every five seconds.  Hashed
placement rides the pauses (tail latency explodes); adaptive placement
steers new keys to healthy pairs, at the cost of a per-key location map
-- the same bookkeeping-for-robustness trade as Section 3.2's adaptive
striping.

Run:  python examples/dht_gc.py
"""

import random

from repro.cluster import ReplicatedDht
from repro.core import System
from repro.faults import PeriodicBackground
from repro.sim import LatencyRecorder

N_OPS = 800
GAP = 0.02  # 50 puts/s offered


def run_config(label, with_gc, placement, seed=3):
    sim = System()
    dht = ReplicatedDht(
        sim, n_pairs=4, brick_rate=100.0, op_work=1.0, placement=placement
    )
    if with_gc:
        # Registry wiring: the GC pause reaches the brick by its name.
        sim.inject("brick0", PeriodicBackground(period=5.0, duration=1.0, factor=0.0))
    recorder = LatencyRecorder()
    rng = random.Random(seed)

    def one(key):
        latency = yield dht.put(key)
        recorder.record(latency)

    def client():
        for i in range(N_OPS):
            sim.process(one(f"key-{i}"))
            yield sim.timeout(GAP)

    sim.process(client())
    sim.run(until=N_OPS * GAP * 20)
    summary = recorder.summary()
    print(f"  {label:<28} p50 {summary.p50 * 1000:7.1f} ms   "
          f"p99 {summary.p99 * 1000:7.1f} ms   "
          f"max {summary.maximum * 1000:7.1f} ms   "
          f"map entries: {dht.bookkeeping_entries}")
    return summary


def main():
    print(f"insert-heavy stream: {N_OPS} puts at {1 / GAP:.0f}/s, "
          "4 mirror pairs, GC pauses one brick 1s of every 5s\n")
    baseline = run_config("no GC, hashed", False, "hash")
    hashed = run_config("GC, hashed placement", True, "hash")
    adaptive = run_config("GC, adaptive placement", True, "adaptive")
    print(f"\nGC inflated hashed-placement p99 by "
          f"{hashed.p99 / baseline.p99:.0f}x; adaptive placement brought it "
          f"back within {adaptive.p99 / baseline.p99:.1f}x of baseline")
    assert hashed.p99 > 10 * baseline.p99
    assert adaptive.p99 < 0.3 * hashed.p99


if __name__ == "__main__":
    main()
