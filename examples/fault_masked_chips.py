#!/usr/bin/env python
"""'Identical' processors that aren't: fault masking and nondeterminism.

Two Section 2.1.1 war stories on the processor substrate:

1. The Viking study: chips specified as 16 KB 4-way L1 whose effective
   cache measures 4 KB direct-mapped because fault masking disabled
   three ways at the factory.  Run the cache-sizing microbenchmark and
   an application trace on both parts.
2. Kushman's UltraSPARC nonmonotonicity: the same snippet, run many
   times under identical conditions, lands on one of two runtimes that
   differ 3x depending on leftover predictor state.

Run:  python examples/fault_masked_chips.py
"""

import random

from repro.processor import (
    Cache,
    CacheConfig,
    NextFieldPredictor,
    run_snippet,
    run_trace,
    working_set_loop,
)

SPEC = CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=32)


def measure_effective_size(cache):
    """The Viking micro-benchmark: grow the working set until it thrashes."""
    for kb in (2, 4, 8, 16, 32):
        # Warm up, then measure steady state.
        trace = working_set_loop(kb * 1024, iterations=2)
        run_trace(cache, trace)
        cache.reset_counters()
        cost = run_trace(cache, working_set_loop(kb * 1024, iterations=3))
        if cost.misses / cost.accesses > 0.5:
            return f"<{kb}KB"
    return ">=32KB"


def main():
    print("two chips, both sold as '16KB 4-way L1':\n")
    healthy = Cache(SPEC)
    masked = Cache(SPEC)
    masked.mask_ways(3)  # the TI-produced parts

    for label, cache in (("chip A (healthy)", healthy), ("chip B (masked)", masked)):
        probe = Cache(SPEC)
        if cache is masked:
            probe.mask_ways(3)
        size = measure_effective_size(probe)
        print(f"  {label:<18} effective cache by microbenchmark: {size}")

    # Application performance difference.
    app = working_set_loop(8 * 1024, iterations=5)
    cost_a = run_trace(Cache(SPEC), app)
    chip_b = Cache(SPEC)
    chip_b.mask_ways(3)
    cost_b = run_trace(chip_b, app)
    cpu = 6  # non-memory work per access
    runtime_a = cost_a.cycles + cost_a.accesses * cpu
    runtime_b = cost_b.cycles + cost_b.accesses * cpu
    print(f"\n  8KB-working-set app: chip B runs "
          f"{runtime_b / runtime_a:.2f}x slower than chip A")

    print("\nKushman nonmonotonicity: one snippet, 20 'identical' runs:")
    snippet = [(0, 5)] * 1000
    runtimes = []
    for seed in range(20):
        predictor = NextFieldPredictor(
            4, random.Random(seed), update="sticky", target_space=8
        )
        runtimes.append(
            run_snippet(predictor, snippet, base_cycles=1, mispredict_penalty=2).cycles
        )
    fast, slow = min(runtimes), max(runtimes)
    print(f"  runtimes observed: fast={fast} cycles, slow={slow} cycles "
          f"({slow / fast:.1f}x apart)")
    print(f"  {sum(1 for r in runtimes if r == slow)} of 20 runs were slow -- "
          "purely from leftover predictor state")
    assert runtime_b > 1.2 * runtime_a
    assert slow / fast > 2.5


if __name__ == "__main__":
    main()
