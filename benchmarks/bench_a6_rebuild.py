"""Benchmark A6: rebuild throttle trade-off."""

from conftest import regenerate

from repro.experiments import a6_rebuild


def test_a6_rebuild(benchmark):
    table = regenerate(benchmark, a6_rebuild.run, throttles=(0.0, 1.0, 4.0), blocks=550)
    exposures = table.column("exposure window (s)")
    latencies = table.column("mean foreground read (s)")
    assert exposures == sorted(exposures)
    assert latencies == sorted(latencies, reverse=True)
