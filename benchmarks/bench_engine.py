"""Microbenchmarks for the discrete-event kernel hot paths.

Unlike the per-experiment benchmarks (which time a whole table
regeneration), these isolate the four kernel behaviours every experiment
leans on: raw event churn, RateServer rate-change storms, FIFO job
throughput, and sweep scaling.  ``scripts/perf_report.py`` times the
same workloads standalone to emit the baseline-vs-after
``BENCH_engine.json`` summary.

Each assertion pins the workload's deterministic checksum, so a kernel
change that silently alters scheduling order fails here before it
corrupts an experiment table.
"""

from conftest import regenerate
from engine_workloads import event_churn, fifo_jobs, rate_change_storm, sweep_scaling


def test_event_churn(benchmark):
    total = regenerate(benchmark, event_churn, rounds=10, n_procs=200, n_steps=50)
    # 200 hoppers each end at start + 25.0 virtual seconds.
    assert abs(total - sum(i * 0.01 + 25.0 for i in range(200))) < 1e-6


def test_rate_change_storm(benchmark):
    work = regenerate(benchmark, rate_change_storm, rounds=10, n_bursts=500, burst=8)
    # All 8 jobs of n_bursts*burst work units complete.
    assert work == 8 * 500 * 8.0


def test_fifo_10k(benchmark):
    total_response = regenerate(benchmark, fifo_jobs, rounds=5, n_jobs=10_000)
    assert total_response > 0


def test_sweep_scaling_serial(benchmark):
    total = regenerate(benchmark, sweep_scaling, rounds=5, n_points=24, n_jobs=400)
    assert total > 0


def test_sweep_scaling_matches_parallel():
    """parallel_sweep returns bit-identical results to the serial sweep."""
    assert sweep_scaling(n_points=6, n_jobs=100, workers=2) == sweep_scaling(
        n_points=6, n_jobs=100
    )
