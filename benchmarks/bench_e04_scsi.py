"""Benchmark E4: SCSI timeout/parity accounting and reset impact."""

from conftest import regenerate

from repro.experiments import e04_scsi


def test_e04_scsi(benchmark):
    # The study's window: 6 months, enough errors for the mix to converge.
    table = regenerate(benchmark, e04_scsi.run, days=180.0)
    rows = {row[0]: row[1] for row in table.rows}
    assert abs(rows["SCSI fraction of all errors"] - 0.49) < 0.08
    assert abs(rows["SCSI fraction excl. network"] - 0.87) < 0.08
