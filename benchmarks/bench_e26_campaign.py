"""Benchmark E26: the fault campaign's policy scorecard."""

from conftest import regenerate

from repro.experiments import e26_campaign


def test_e26_campaign(benchmark):
    table = regenerate(
        benchmark,
        e26_campaign.run,
        scenarios_per_family=1,
        n_requests=160,
        verify_determinism=False,
    )
    cells = {
        (w, f, p): (mean, waste)
        for w, f, p, mean, waste in zip(
            table.column("workload"), table.column("family"),
            table.column("policy"), table.column("mean_s"),
            table.column("waste_pct"),
        )
    }
    # Correlated stutter: stutter-aware beats the fail-stop reflex and
    # wastes nothing; fail-stop-only: the two agree to within noise.
    for workload in ("raid10", "dht"):
        slow_fixed, waste_fixed = cells[(workload, "correlated", "fixed-timeout")]
        slow_aware, waste_aware = cells[(workload, "correlated", "stutter-aware")]
        assert slow_aware < 0.7 * slow_fixed
        assert waste_aware == 0.0 and waste_fixed > 0.0
        stop_fixed, __ = cells[(workload, "failstop", "fixed-timeout")]
        stop_aware, __ = cells[(workload, "failstop", "stutter-aware")]
        assert abs(stop_aware - stop_fixed) <= 0.25 * stop_fixed
    assert all(o == "ok" for o in table.column("oracle"))
