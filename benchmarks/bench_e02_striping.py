"""Benchmark E2: striped storage tracks the single slowest disk."""

from conftest import regenerate

from repro.experiments import e02_striping


def test_e02_striping(benchmark):
    table = regenerate(benchmark, e02_striping.run, n_blocks=512)
    measured = table.column("measured MB/s")
    predicted = table.column("N*b prediction")
    for m, p in zip(measured, predicted):
        assert abs(m - p) / p < 0.05
