"""Benchmark E22: distributed queue vs static partitioning."""

from conftest import regenerate

from repro.experiments import e22_river


def test_e22_river(benchmark):
    table = regenerate(benchmark, e22_river.run, n_records=120)
    perturbed = [row for row in table.rows if row[0] <= 0.25]
    for row in perturbed:
        assert row[2] > 1.5 * row[1]  # DQ beats hash partitioning
        assert row[4] > 0.7  # and stays near ideal capacity
