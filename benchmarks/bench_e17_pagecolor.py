"""Benchmark E17: page placement vs cache misses."""

from conftest import regenerate

from repro.experiments import e17_pagecolor


def test_e17_pagecolor(benchmark):
    table = regenerate(benchmark, e17_pagecolor.run)
    worst = table.column("relative runtime")[-1]
    assert 1.3 < worst < 1.7  # paper: up to 50%
