"""Benchmark E19: failure prediction from stutter trends."""

from conftest import regenerate

from repro.experiments import e19_prediction


def test_e19_prediction(benchmark):
    table = regenerate(benchmark, e19_prediction.run)
    stats = dict(zip(table.column("metric"), table.column("value")))
    assert stats["recall"] >= 0.75
    assert stats["mean warning lead time (s)"] > 100.0
