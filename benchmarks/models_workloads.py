"""Component-model macrobenchmark workloads (the ``models`` suite).

Where ``engine_workloads`` times the discrete-event kernel, these time
the *component models* the kernel drives: the zoned disk service-time
path, bad-block remap counting, and the metrics layer.  Each hot-path
workload takes ``impl="analytic"`` (the shipped fast path) or
``impl="reference"`` (the retained interpreted-loop spec:
``Disk.service_time_reference`` / ``BadBlockMap.remapped_in_range_reference``
/ a linear availability rescan), so ``scripts/perf_report.py --suite
models`` can time both sides in one process and assert the checksums are
*identical* — the fast paths are bit-exact replacements, not
approximations.

The full-experiment macros (e01/e02/e03) run the real experiment tables
with the reference implementations monkey-patched in (``impl=
"reference"``) or with the shipped code (``impl="analytic"``); their
checksum is the table's canonical SHA-256 digest, which must also be
identical across implementations.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from repro.sim.engine import Simulator
from repro.sim.metrics import AvailabilityMeter, LatencyRecorder
from repro.storage.badblocks import BadBlockMap
from repro.storage.disk import Disk, DiskParams
from repro.storage.geometry import zoned_geometry

__all__ = [
    "zoned_stream",
    "random_io_remaps",
    "metric_raid_run",
    "experiment_digest",
    "reference_models",
    "MODEL_WORKLOADS",
    "MACRO_EXPERIMENTS",
]


@contextmanager
def reference_models():
    """Swap the retained reference implementations into the hot paths.

    Restores the fast paths on exit.  Used to time "before" passes of
    whole experiments without keeping an old source tree around; safe
    because the reference methods are bit-identical in output.
    """
    patched = [
        (Disk, "service_time", Disk.service_time_reference),
        (BadBlockMap, "remapped_in_range", BadBlockMap.remapped_in_range_reference),
    ]
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in patched]
    try:
        for cls, name, ref in patched:
            setattr(cls, name, ref)
        yield
    finally:
        for cls, name, orig in saved:
            setattr(cls, name, orig)


def _hawk_disk(n_zones: int, remap_rate: float, seed: int) -> Disk:
    """A many-zone disk with an optional remap population."""
    geometry = zoned_geometry(200_000, 11.0, 5.5, n_zones=n_zones)
    badblocks = BadBlockMap.random(200_000, remap_rate, random.Random(seed)) \
        if remap_rate else None
    params = DiskParams(rpm=5400, avg_seek=0.011, block_size_mb=0.5)
    return Disk(Simulator(), "bench", geometry=geometry, params=params,
                badblocks=badblocks)


def zoned_stream(
    impl: str = "analytic", n_zones: int = 64, nblocks: int = 120_000, chunk: int = 48
) -> float:
    """Sequential stream across a many-zone disk, chunked like a scan.

    Every request pays the per-zone transfer charge; with 64 zones the
    reference path's linear ``_zone_end`` scan dominates.  Checksum: the
    float sum of all service times (bit-identical across impls).
    """
    disk = _hawk_disk(n_zones, 0.0, seed=0)
    service = disk.service_time if impl == "analytic" else disk.service_time_reference
    total = 0.0
    at = 0
    remaining = nblocks
    while remaining > 0:
        span = min(chunk, remaining)
        total += service(at, span, True)
        at += span
        remaining -= span
    return total


def random_io_remaps(
    impl: str = "analytic", n_requests: int = 12_000, remap_rate: float = 0.02,
    max_blocks: int = 256, seed: int = 11,
) -> float:
    """Random I/O against a remap-heavy disk (~4k grown defects).

    The reference ``remapped_in_range`` scans min(request, map) per
    request; the sorted-list path is two bisects.  Checksum: sum of
    service times plus the total remap hits.
    """
    disk = _hawk_disk(16, remap_rate, seed)
    service = disk.service_time if impl == "analytic" else disk.service_time_reference
    count = disk.badblocks.remapped_in_range if impl == "analytic" \
        else disk.badblocks.remapped_in_range_reference
    rng = random.Random(seed + 1)
    capacity = disk.geometry.capacity_blocks
    total = 0.0
    hits = 0
    for _ in range(n_requests):
        nblocks = rng.randint(1, max_blocks)
        lba = rng.randrange(capacity - nblocks)
        total += service(lba, nblocks, False)
        hits += count(lba, nblocks)
    return total + hits


def metric_raid_run(
    impl: str = "analytic", n_requests: int = 4_000, n_slos: int = 60, seed: int = 3
) -> float:
    """Metric-heavy monitoring pass: latencies from a mirrored-read
    stream, with an availability curve re-queried as samples arrive.

    Exercises ``AvailabilityMeter.availability_at`` (cached bisect vs
    the reference linear rescan) and repeated ``LatencyRecorder``
    summaries.  Checksum: sum of availabilities and summary means
    (identical across impls — the cache is a pure wall-clock lever).
    """
    disk = _hawk_disk(8, 0.005, seed)
    rng = random.Random(seed + 1)
    capacity = disk.geometry.capacity_blocks
    meter = AvailabilityMeter(slo=0.05)
    recorder = LatencyRecorder()
    slos = [0.005 * (i + 1) for i in range(n_slos)]
    checksum = 0.0
    for i in range(n_requests):
        nblocks = rng.randint(1, 64)
        lba = rng.randrange(capacity - nblocks)
        latency = disk.service_time(lba, nblocks, False)
        meter.record(latency)
        recorder.record(latency)
        if i % 100 == 99:  # periodic dashboard refresh over the curve
            if impl == "analytic":
                checksum += sum(meter.availability_at(s) for s in slos)
            else:
                checksum += sum(
                    sum(1 for r in meter.response_times if r <= s) / meter.offered
                    for s in slos
                )
            checksum += recorder.summary().mean
    return checksum


def experiment_digest(experiment: str, impl: str = "analytic", **kwargs) -> str:
    """Regenerate one experiment table end to end; checksum = canonical
    SHA-256 digest of the table (must match across implementations)."""
    from repro.experiments import ALL_EXPERIMENTS

    run = ALL_EXPERIMENTS[experiment]
    if impl == "reference":
        with reference_models():
            return run(**kwargs).digest()
    return run(**kwargs).digest()


#: Paired hot-path workloads: name -> (callable, kwargs).  The perf
#: report times each with impl="reference" then impl="analytic".
MODEL_WORKLOADS = {
    "zoned_stream": (zoned_stream, {}),
    "random_io_remaps": (random_io_remaps, {}),
    "metric_raid_run": (metric_raid_run, {}),
}

#: Full-experiment macros timed the same paired way.
MACRO_EXPERIMENTS = ("e01", "e02", "e03")
