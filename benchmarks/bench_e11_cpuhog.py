"""Benchmark E11: CPU hog vs the parallel sort, four policies."""

from conftest import regenerate

from repro.experiments import e11_cpuhog


def test_e11_cpuhog(benchmark):
    table = regenerate(benchmark, e11_cpuhog.run, total_mb=320.0)
    by_key = {(row[0], row[1]): row[3] for row in table.rows}
    assert 1.5 < by_key[("static", True)] <= 2.1  # paper: ~2x
    assert by_key[("pull", True)] < 1.45
