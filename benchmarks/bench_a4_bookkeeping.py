"""Benchmark A4: adaptive striping's bookkeeping vs robustness."""

from conftest import regenerate

from repro.experiments import a4_bookkeeping


def test_a4_bookkeeping(benchmark):
    table = regenerate(benchmark, a4_bookkeeping.run)
    adaptive = [row for row in table.rows if row[1] == "adaptive"]
    uniform = [row for row in table.rows if row[1] == "uniform"]
    for a_row, u_row in zip(adaptive, uniform):
        assert a_row[2] == a_row[0]  # one map entry per block
        assert u_row[2] == 0
        assert a_row[3] > u_row[3]  # robustness bought by the map
