"""Benchmark E25: observer-dependent performance-fault verdicts."""

from conftest import regenerate

from repro.experiments import e25_observer


def test_e25_observer(benchmark):
    table = regenerate(benchmark, e25_observer.run)
    verdicts = {(row[0], row[1]): row[3] for row in table.rows}
    assert verdicts[("clientA's access link", "clientA")] == "faulty"
    assert verdicts[("clientA's access link", "clientC")] == "healthy"
    assert verdicts[("server's shared uplink", "clientC")] == "faulty"
