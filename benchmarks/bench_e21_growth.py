"""Benchmark E21: plug-and-play incremental growth."""

from conftest import regenerate

from repro.experiments import e21_growth


def test_e21_growth(benchmark):
    table = regenerate(benchmark, e21_growth.run, n_blocks=600)
    four_new = [row for row in table.rows if row[0] == 4][0]
    assert four_new[2] > 1.4 * four_new[1]  # adaptive beats uniform
    assert four_new[4] > 0.95  # and runs at the aggregate capacity
