"""Benchmark E24: video-server glitches under disk offlining."""

from conftest import regenerate

from repro.experiments import e24_video


def test_e24_video(benchmark):
    table = regenerate(benchmark, e24_video.run, n_frames=120)
    worst = table.rows[-1]
    assert worst[1] > 0.05  # primary-only glitches under heavy offlining
    assert worst[2] < 0.8 * worst[1]  # mirror failover helps
    assert worst[3] < 0.01  # hedged reads mask the stalls entirely
