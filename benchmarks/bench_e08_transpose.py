"""Benchmark E8: one slow receiver vs the all-to-all transpose."""

from conftest import regenerate

from repro.experiments import e08_transpose


def test_e08_transpose(benchmark):
    table = regenerate(benchmark, e08_transpose.run)
    slowdowns = table.column("slowdown vs healthy")
    assert any(2.5 < s < 5.0 for s in slowdowns)  # paper: ~3x
