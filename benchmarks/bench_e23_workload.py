"""Benchmark E23: skewed-workload tolerance of placement policies."""

from conftest import regenerate

from repro.experiments import e23_workload


def test_e23_workload(benchmark):
    table = regenerate(benchmark, e23_workload.run, n_ops=600)
    p99_idx = table.columns.index("p99 (s)")
    by = {(row[0], row[1]): row[p99_idx] for row in table.rows}
    assert by[(0.8, "hash")] > 1.5 * by[(0.0, "hash")]
    assert by[(0.8, "adaptive")] < 0.8 * by[(0.8, "hash")]
