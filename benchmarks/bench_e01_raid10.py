"""Benchmark E1: the Section 3.2 RAID-10 three-scenario table."""

from conftest import regenerate

from repro.experiments import e01_raid10


def test_e01_raid10(benchmark):
    table = regenerate(benchmark, e01_raid10.run, n_blocks=400)
    assert len(table) == 9
    # Headline shape: adaptive striping holds (N-1)B + b through a
    # dynamic fault while uniform/proportional track the slow disk.
    dynamic = {row[1]: row[2] for row in table.rows if row[0] == "dynamic-fault"}
    assert dynamic["adaptive"] > 1.5 * dynamic["uniform"]
