"""Benchmark E16: run-to-run nondeterminism from predictor state."""

from conftest import regenerate

from repro.experiments import e16_nondeterminism


def test_e16_nondeterminism(benchmark):
    table = regenerate(benchmark, e16_nondeterminism.run)
    stats = dict(zip(table.column("statistic"), table.column("value")))
    assert abs(stats["slow/fast ratio"] - 3.0) < 0.2  # paper: up to 3x
