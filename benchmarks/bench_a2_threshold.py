"""Benchmark A2: sweeping the correctness-promotion threshold T."""

from conftest import regenerate

from repro.experiments import a2_threshold


def test_a2_threshold(benchmark):
    table = regenerate(benchmark, a2_threshold.run)
    availability = table.column("availability")
    # The low-T extreme kills working servers and craters availability.
    assert availability[0] < min(availability[1:])
