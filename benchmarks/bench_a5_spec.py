"""Benchmark A5: simple vs load-aware performance specifications."""

from conftest import regenerate

from repro.experiments import a5_spec


def test_a5_spec(benchmark):
    table = regenerate(benchmark, a5_spec.run)
    simple, banded = table.rows
    assert simple[1] > banded[1]  # simple spec flags legitimate load dips
    assert simple[3] > 0 and banded[3] > 0  # both catch the real fault
