"""Benchmark A7: the hedge-after threshold trade-off."""

from conftest import regenerate

from repro.experiments import a7_hedging


def test_a7_hedging(benchmark):
    table = regenerate(benchmark, a7_hedging.run)
    makespans = table.column("makespan (s)")
    duplicates = table.column("duplicates")
    assert makespans[-1] > 1.15 * makespans[0]  # disabled pays the straggler
    assert duplicates[0] > duplicates[-1]  # eagerness costs duplicates
