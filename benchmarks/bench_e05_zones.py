"""Benchmark E5: multi-zone bandwidth profile."""

from conftest import regenerate

from repro.experiments import e05_zones


def test_e05_zones(benchmark):
    table = regenerate(benchmark, e05_zones.run)
    rates = table.column("measured MB/s")
    assert 1.8 < rates[0] / rates[-1] < 2.2  # paper: up to 2x
