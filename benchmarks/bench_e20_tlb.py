"""Benchmark E20: nondeterministic TLB replica divergence."""

from conftest import regenerate

from repro.experiments import e20_tlb


def test_e20_tlb(benchmark):
    table = regenerate(benchmark, e20_tlb.run)
    random_pressured = [
        row for row in table.rows if row[1] == "random" and row[0] > 64
    ]
    assert all(row[2] > 0.1 for row in random_pressured)
    lru_rows = [row for row in table.rows if row[1] == "lru"]
    assert all(row[2] == 0.0 for row in lru_rows)
