"""Benchmark E18: scalar-vector memory bank interference."""

from conftest import regenerate

from repro.experiments import e18_membank


def test_e18_membank(benchmark):
    table = regenerate(benchmark, e18_membank.run)
    losses = table.column("loss vs clean")
    assert any(1.8 < loss < 2.6 for loss in losses)  # paper: up to 2x
