"""Benchmark E12: GC pauses in the replicated DHT."""

from conftest import regenerate

from repro.experiments import e12_dht


def test_e12_dht(benchmark):
    table = regenerate(benchmark, e12_dht.run, n_ops=800)
    p99 = dict(zip(table.column("configuration"), table.column("p99 (s)")))
    assert p99["GC, hashed"] > 10 * p99["no GC, hashed"]
    assert p99["GC, adaptive placement"] < 0.3 * p99["GC, hashed"]
