"""Kernel microbenchmark workloads shared by the benchmark suites.

Each workload exercises one hot path of :mod:`repro.sim` through its
*public* API only, so the same workload can be timed against any version
of the kernel (``scripts/perf_report.py`` uses this to produce
baseline-vs-after comparisons, and ``bench_engine.py`` wraps the same
functions in pytest-benchmark).

Every workload returns a small checksum-style result so callers can
assert the work actually happened (and happened deterministically)
rather than being optimised away.
"""

from __future__ import annotations

from repro.analysis.sweep import sweep
from repro.sim.engine import Simulator
from repro.sim.resources import RateServer

__all__ = [
    "event_churn",
    "rate_change_storm",
    "fifo_jobs",
    "sweep_point",
    "sweep_scaling",
    "e01_table_digest",
    "WORKLOADS",
]


def event_churn(n_procs: int = 200, n_steps: int = 50) -> float:
    """Many short-lived processes each yielding a chain of timeouts."""
    sim = Simulator()
    total = 0.0

    def hopper(start: float):
        t = start
        for _ in range(n_steps):
            yield sim.timeout(0.5)
            t += 0.5
        return t

    procs = [sim.process(hopper(i * 0.01)) for i in range(n_procs)]
    sim.run()
    for p in procs:
        total += p.value
    return total


def rate_change_storm(n_bursts: int = 500, burst: int = 8, n_jobs: int = 8) -> float:
    """A few large in-flight jobs hammered by a storm of rate changes.

    This is the RateServer worst case: every ``set_rate`` must reschedule
    the in-flight job's completion.  The pre-optimisation kernel spawned a
    full generator process per reschedule and left a stale ghost timer in
    the heap; the fast path cancels and re-arms a single callback timer.
    Several rate changes land at each instant (a burst), as happens when a
    fault injector perturbs a shared chain of components at once.
    """
    sim = Simulator()
    server = RateServer(sim, rate=1.0, name="storm")
    total_work = float(n_bursts * burst)
    done = [server.submit(total_work) for _ in range(n_jobs)]

    def storm():
        for i in range(n_bursts):
            for j in range(burst):
                server.set_rate(1.0 + ((i + j) & 3))
            yield sim.timeout(0.25)

    sim.process(storm())
    sim.run()
    assert all(ev.triggered for ev in done)
    return server.work_completed


def fifo_jobs(n_jobs: int = 10_000) -> float:
    """10k-job FIFO drain: pure submit/complete churn, no rate changes."""
    sim = Simulator()
    server = RateServer(sim, rate=100.0, name="fifo")
    events = [server.submit(1.0 + (i % 7) * 0.25) for i in range(n_jobs)]
    sim.run()
    assert server.jobs_completed == n_jobs
    return sum(ev.value.response_time for ev in events)


def sweep_point(n_jobs: int) -> float:
    """One sweep point: a small self-contained RateServer simulation."""
    sim = Simulator()
    server = RateServer(sim, rate=10.0, name="pt")
    events = [server.submit(1.0 + (i % 3)) for i in range(n_jobs)]
    sim.schedule(1.0, server.set_rate, 5.0)
    sim.schedule(3.0, server.set_rate, 10.0)
    sim.run()
    return sum(ev.value.response_time for ev in events)


def sweep_scaling(n_points: int = 24, n_jobs: int = 400, workers: int | None = None) -> float:
    """A sweep of independent simulation points (serial or parallel).

    With ``workers=None`` this uses the plain serial :func:`sweep`; when
    the parallel runner is available (post-optimisation kernels) a worker
    count routes through :func:`repro.analysis.parallel.parallel_sweep`.
    """
    points = [n_jobs + i for i in range(n_points)]
    if workers:
        from repro.analysis.parallel import parallel_sweep

        results = parallel_sweep(points, sweep_point, workers=workers)
    else:
        results = sweep(points, sweep_point)
    return sum(value for _, value in results)


def e01_table_digest(n_blocks: int = 400) -> str:
    """Wall-clock proxy for a full experiment: regenerate the E1 table.

    Returns :meth:`Table.digest` (SHA-256 over the canonical serialized
    table, full precision -- the same identity the result cache uses),
    so a baseline-vs-after report shows at a glance that the optimised
    kernel produced an identical table while the timing moved.
    """
    from repro.experiments import e01_raid10

    return e01_raid10.run(n_blocks=n_blocks).digest()


#: name -> (callable, kwargs) registry used by the perf report script.
WORKLOADS = {
    "event_churn": (event_churn, {}),
    "rate_change_storm": (rate_change_storm, {}),
    "fifo_10k": (fifo_jobs, {}),
    "sweep_scaling": (sweep_scaling, {}),
    "e01_raid10": (e01_table_digest, {}),
}
