"""Benchmark E15: cache fault masking on 'identical' parts."""

from conftest import regenerate

from repro.experiments import e15_cachemask


def test_e15_cachemask(benchmark):
    table = regenerate(benchmark, e15_cachemask.run)
    worst = table.column("relative runtime")[-1]
    assert 1.25 < worst < 1.6  # paper: up to 40%
