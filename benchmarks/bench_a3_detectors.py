"""Benchmark A3: detector families, detection lag vs false positives."""

from conftest import regenerate

from repro.experiments import a3_detectors


def test_a3_detectors(benchmark):
    table = regenerate(benchmark, a3_detectors.run)
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    assert all(lag != float("inf") for __, lag in rows.values())
    assert rows["threshold, window=16"][0] <= rows["threshold, window=2"][0]
