"""Benchmark E10: memory hog vs interactive response time."""

from conftest import regenerate

from repro.experiments import e10_memhog


def test_e10_memhog(benchmark):
    table = regenerate(benchmark, e10_memhog.run)
    slowdowns = table.column("slowdown vs no hog")
    assert max(slowdowns) > 40.0  # paper: up to 40x worse
