"""Benchmark E14: availability across routing policies and faults."""

from conftest import regenerate

from repro.experiments import e14_availability


def test_e14_availability(benchmark):
    table = regenerate(benchmark, e14_availability.run, n_requests=600)
    rows = {row[0]: row for row in table.rows}
    assert rows["round-robin"][2] < 0.9  # fail-stop design loses availability
    assert rows["weighted"][2] > 0.95  # fail-stutter design keeps it
    assert rows["weighted+T"][3] > 0.95  # watchdog handles the full stall
