"""Benchmark E13: file-system aging vs sequential reads."""

from conftest import regenerate

from repro.experiments import e13_layout


def test_e13_layout(benchmark):
    table = regenerate(benchmark, e13_layout.run)
    fractions = table.column("fraction of fresh")
    assert min(fractions) < 0.55  # paper: up to 2x loss
