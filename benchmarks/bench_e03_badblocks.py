"""Benchmark E3: bad-block remapping vs sequential bandwidth."""

from conftest import regenerate

from repro.experiments import e03_badblocks


def test_e03_badblocks(benchmark):
    table = regenerate(benchmark, e03_badblocks.run, nblocks=8000)
    fractions = dict(
        zip(table.column("fault-rate multiplier"), table.column("fraction of clean"))
    )
    assert 0.85 < fractions[3.0] < 0.97  # paper: ~0.91
