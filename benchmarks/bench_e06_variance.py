"""Benchmark E6: Vesta-style run-to-run variance distribution."""

from conftest import regenerate

from repro.experiments import e06_variance


def test_e06_variance(benchmark):
    table = regenerate(benchmark, e06_variance.run, n_runs=60)
    stats = dict(zip(table.column("statistic"), table.column("fraction of peak")))
    assert stats["median"] > 0.8
    assert stats["worst"] < 0.5
