"""Benchmark E9: deadlock-recovery stalls from gappy messages."""

from conftest import regenerate

from repro.experiments import e09_deadlock


def test_e09_deadlock(benchmark):
    table = regenerate(benchmark, e09_deadlock.run)
    for gap, duration, events, __ in table.rows:
        if gap > 0.25:
            assert events >= 1 and duration > 2.0
        else:
            assert events == 0
