"""Benchmark A1: notification policy traffic vs adaptation lag."""

from conftest import regenerate

from repro.experiments import a1_notification


def test_a1_notification(benchmark):
    table = regenerate(benchmark, a1_notification.run)
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    assert rows["immediate"][0] > rows["persistent-only"][0]
    assert rows["persistent-only"][1] <= 6.0  # bounded adaptation lag
