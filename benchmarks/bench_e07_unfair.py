"""Benchmark E7: switch unfairness slows the global transfer."""

from conftest import regenerate

from repro.experiments import e07_unfair


def test_e07_unfair(benchmark):
    table = regenerate(benchmark, e07_unfair.run)
    slowdowns = dict(zip(table.column("switch"), table.column("slowdown vs fair")))
    assert slowdowns["half the ports favored"] > 1.4  # paper: ~50% slowdown
