"""Microbenchmarks for the component-model hot paths.

The pytest-benchmark face of ``models_workloads``: each benchmark times
the shipped analytic path and asserts its checksum against the retained
reference implementation, so a model change that silently alters service
times fails here before it corrupts an experiment table.
``scripts/perf_report.py --suite models`` times the same workloads
standalone to emit the reference-vs-analytic ``BENCH_models.json``.
"""

from conftest import regenerate
from models_workloads import metric_raid_run, random_io_remaps, zoned_stream


def test_zoned_stream(benchmark):
    total = regenerate(benchmark, zoned_stream, rounds=10, impl="analytic")
    assert total == zoned_stream(impl="reference")


def test_random_io_remaps(benchmark):
    total = regenerate(benchmark, random_io_remaps, rounds=5, impl="analytic")
    assert total == random_io_remaps(impl="reference")


def test_metric_raid_run(benchmark):
    checksum = regenerate(benchmark, metric_raid_run, rounds=5, impl="analytic")
    assert checksum == metric_raid_run(impl="reference")
