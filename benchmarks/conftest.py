"""Shared configuration for the benchmark harness.

Every benchmark regenerates one experiment table from DESIGN.md's index
(``pytest benchmarks/ --benchmark-only``).  The benchmark value is the
wall-clock cost of regenerating that experiment; the *content* of the
table is asserted inside each benchmark so a regression in the paper
shape fails the run even when timing is fine.
"""

import pytest


def regenerate(benchmark, runner, **params):
    """Benchmark one experiment runner and return its table."""
    return benchmark.pedantic(lambda: runner(**params), iterations=1, rounds=3)
