"""Shared configuration for the benchmark harness.

Every experiment benchmark regenerates one experiment table from
DESIGN.md's index (``pytest benchmarks/ --benchmark-only``).  The
benchmark value is the wall-clock cost of regenerating that experiment;
the *content* of the table is asserted inside each benchmark so a
regression in the paper shape fails the run even when timing is fine.
``bench_engine.py`` additionally microbenchmarks the simulation kernel
itself.
"""

import pytest


def regenerate(benchmark, runner, *, iterations=1, rounds=3, **params):
    """Benchmark one runner and return its result.

    ``iterations`` and ``rounds`` pass straight through to
    ``benchmark.pedantic`` so microbenchmarks can use many more rounds
    than the (much slower) experiment-table regenerations, which keep
    the historical default of 3 rounds x 1 iteration.
    """
    return benchmark.pedantic(
        lambda: runner(**params), iterations=iterations, rounds=rounds
    )
