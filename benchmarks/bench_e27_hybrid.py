"""Benchmark E27: hybrid engine exactness and million-client scale."""

from conftest import regenerate

from repro.experiments import e27_hybrid_scale


def test_e27_hybrid_scale(benchmark):
    # Bench-sized: one policy pair per workload and 100k clients keeps
    # the regeneration fast while still exercising every row kind
    # (discrete baseline, hybrid overlap, hybrid scale + replay).
    table = regenerate(
        benchmark,
        e27_hybrid_scale.run,
        overlap_requests=1200,
        scale_requests=100_000,
        policies=("fixed-timeout", "stutter-aware"),
    )
    checks = table.column("check")
    engines = table.column("engine")
    # Every hybrid overlap row must certify exactness against discrete,
    # and every scale row must be digest-stable on rerun.
    assert checks.count("exact") == engines.count("hybrid") // 2
    assert checks.count("replay-ok") == engines.count("hybrid") // 2
    assert "DIVERGED" not in checks and "REPLAY-DIFF" not in checks
    assert all(o in ("ok", "--") for o in table.column("oracle"))
    # The scale rows actually ran at scale.
    assert max(table.column("clients")) == 100_000
