#!/usr/bin/env python
"""Time the benchmark suites and emit JSON reports.

Eight suites, selected with ``--suite`` (or ``all`` to run every one):

* ``engine`` (default) -- the kernel microbenchmarks, timed as
  baseline-vs-after (``BENCH_engine.json``);
* ``report`` -- the full EXPERIMENTS.md regeneration through the cached
  parallel runner: cold serial, cold parallel, and warm-cache passes,
  with a byte-identical cross-check (``BENCH_report.json``);
* ``models`` -- the component-model hot paths (zoned streaming, remap
  counting, the metrics layer) plus full e01/e02/e03 regenerations,
  each timed against the retained reference implementations in the same
  process, asserting bit-identical checksums (``BENCH_models.json``);
* ``campaign`` -- the fault-campaign engine: scenario-run throughput for
  the standard e26 sweep plus an in-process byte-identical rerun check
  (``BENCH_campaign.json``);
* ``hybrid`` -- the fluid/discrete engine: discrete-vs-hybrid wall clock
  on overlap sizes both engines can run (outcomes must match; the
  recorded speedup must clear 20x) plus hybrid-only timings at a million
  concurrent clients (``BENCH_hybrid.json``);
* ``batch`` -- the seed-batch runner: scalar per-seed e06 vs the same
  seeds as structure-of-arrays lanes of one
  ``repro.sim.batch.SeedBatchRunner``, cold, at the report size and
  scaled up (tables must be byte-identical; the report-size speedup must
  clear 5x) (``BENCH_batch.json``);
* ``sweep`` -- the generative scenario sweep: 100 machine-generated
  scenarios on each engine, oracle-clean with a byte-identical rerun
  digest (``BENCH_sweep.json``);
* ``soak`` -- the soak campaign's memory contract: the same streaming
  soak recorded in two fresh subprocesses at a 10x horizon difference,
  each reporting its own peak RSS; the ratio must stay <= 1.1x and the
  trace must verify byte-for-byte (``BENCH_soak.json``).

Usage (from the repo root)::

    # Record an engine baseline with the current kernel:
    PYTHONPATH=src python scripts/perf_report.py --save baseline.json

    # Or record a baseline against an older kernel revision:
    git worktree add /tmp/oldrepo <rev>
    python scripts/perf_report.py --kernel-src /tmp/oldrepo/src --save baseline.json

    # After optimising, compare and write the summary:
    PYTHONPATH=src python scripts/perf_report.py \
        --baseline baseline.json --out BENCH_engine.json

    # Regenerate the report-suite numbers:
    PYTHONPATH=src python scripts/perf_report.py --suite report

    # Regenerate the component-model numbers (reference vs analytic):
    PYTHONPATH=src python scripts/perf_report.py --suite models

    # Regenerate the fault-campaign numbers:
    PYTHONPATH=src python scripts/perf_report.py --suite campaign

    # Regenerate the hybrid-engine numbers (discrete vs fluid/discrete):
    PYTHONPATH=src python scripts/perf_report.py --suite hybrid

    # Regenerate the seed-batch numbers (scalar vs batched e06):
    PYTHONPATH=src python scripts/perf_report.py --suite batch

    # Regenerate the soak RSS-flatness numbers:
    PYTHONPATH=src python scripts/perf_report.py --suite soak

    # Regenerate every BENCH_*.json in one pass:
    PYTHONPATH=src python scripts/perf_report.py --suite all

    # Smoke mode (CI): run every workload once, no timing claims:
    PYTHONPATH=src python scripts/perf_report.py --smoke
    PYTHONPATH=src python scripts/perf_report.py --suite report --smoke

Engine workloads are timed as best-of-``--repeats`` wall clock, which is
the standard way to reduce scheduler noise for sub-second
microbenchmarks; the report suite times whole regeneration passes.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def time_workload(fn, kwargs, repeats: int) -> dict:
    """Best-of-N wall-clock seconds plus the workload's checksum."""
    best = float("inf")
    checksum = None
    for _ in range(repeats):
        start = time.perf_counter()
        checksum = fn(**kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {"seconds": best, "checksum": checksum}


def run_all(workloads: dict, repeats: int) -> dict:
    results = {}
    for name, (fn, kwargs) in workloads.items():
        results[name] = time_workload(fn, kwargs, repeats)
        print(f"  {name:20s} {results[name]['seconds'] * 1e3:9.2f} ms")
    return results


def run_report_suite(args) -> int:
    """Time full-report regeneration: cold serial / cold parallel / warm.

    All three passes must be byte-identical -- the cache and the pool
    are pure wall-clock levers.  Writes ``BENCH_report.json`` (or
    ``--out``).
    """
    import hashlib
    import os
    import shutil
    import tempfile

    from repro.analysis.cache import ResultCache
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.report import generate
    from repro.experiments.runner import run_suite

    cache_root = Path(tempfile.mkdtemp(prefix="repro-report-bench-"))
    try:
        if args.smoke:
            subset = ["e05", "a5"]
            first = run_suite(subset, cache=ResultCache(cache_root))
            second = run_suite(subset, cache=ResultCache(cache_root))
            ok = all(not r.cached for r in first) and all(r.cached for r in second)
            identical = [r.table.digest() for r in first] == [
                r.table.digest() for r in second
            ]
            for run in second:
                print(f"  {run.experiment}: {'hit' if run.cached else 'MISS'}")
            if not (ok and identical):
                print("report-suite smoke FAILED", file=sys.stderr)
                return 1
            print("  report runner: ok")
            return 0

        passes = {}
        print(f"timing the {len(ALL_EXPERIMENTS)}-experiment report "
              f"(workers={args.workers}, {os.cpu_count()} cores):")
        start = time.perf_counter()
        cold_serial = generate()
        passes["cold_serial_seconds"] = time.perf_counter() - start
        print(f"  cold serial, uncached   {passes['cold_serial_seconds']:8.2f} s")

        start = time.perf_counter()
        cold_parallel = generate(workers=args.workers, cache=ResultCache(cache_root))
        passes["cold_parallel_seconds"] = time.perf_counter() - start
        print(f"  cold parallel (pool)    {passes['cold_parallel_seconds']:8.2f} s")

        start = time.perf_counter()
        warm = generate(workers=args.workers, cache=ResultCache(cache_root))
        passes["warm_cache_seconds"] = time.perf_counter() - start
        print(f"  warm cache              {passes['warm_cache_seconds']:8.2f} s")

        byte_identical = cold_serial == cold_parallel == warm
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": args.workers,
            "experiments": len(ALL_EXPERIMENTS),
            **passes,
            "cold_parallel_speedup": passes["cold_serial_seconds"]
            / passes["cold_parallel_seconds"],
            "warm_speedup_vs_cold_serial": passes["cold_serial_seconds"]
            / passes["warm_cache_seconds"],
            "byte_identical": byte_identical,
            "report_sha256": hashlib.sha256(cold_serial.encode("utf-8")).hexdigest(),
        }
        out = args.out or "BENCH_report.json"
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        print(f"  cold parallel speedup   {payload['cold_parallel_speedup']:6.2f}x")
        print(f"  warm vs cold serial     {payload['warm_speedup_vs_cold_serial']:6.2f}x")
        print(f"  byte identical          {byte_identical}")
        return 0 if byte_identical else 1
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)


def run_campaign_suite(args) -> int:
    """Time the fault-campaign engine and re-verify its determinism.

    Runs the standard e26 campaign (workloads x families x policies x
    scenarios) twice in one process and requires byte-identical scorecard
    digests, then writes scenario-throughput numbers to
    ``BENCH_campaign.json``.  Smoke mode shrinks the request counts and
    skips the JSON.
    """
    from repro.faults.campaign import run_campaign

    kwargs = dict(seed=7, verify_determinism=False)
    if args.smoke:
        kwargs.update(scenarios_per_family=1, n_requests=120)

    start = time.perf_counter()
    first = run_campaign(**kwargs)
    elapsed = time.perf_counter() - start
    second = run_campaign(**kwargs)
    digest = first.table().digest()
    identical = digest == second.table().digest()
    clean = not first.violations
    scenarios = len(first.outcomes)
    print(f"  {scenarios} scenario runs in {elapsed:.2f} s "
          f"({scenarios / elapsed:.1f}/s), oracle clean={clean}, "
          f"rerun identical={identical}")
    if not (identical and clean):
        print("campaign suite FAILED", file=sys.stderr)
        return 1
    if args.smoke:
        print("  campaign suite: ok")
        return 0

    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenario_runs": scenarios,
        "seconds": elapsed,
        "scenarios_per_second": scenarios / elapsed,
        "scorecard_sha256": digest,
        "byte_identical": identical,
        "oracle_violations": len(first.violations),
    }
    out = args.out or "BENCH_campaign.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def run_hybrid_suite(args) -> int:
    """Time the hybrid engine against the discrete engine, then at scale.

    Overlap sizes (both engines can run them) are timed head-to-head on
    the same scenario and seed; the outcomes must agree on every count
    and work total, and the worst-case speedup must clear 20x.  Scale
    rows then time the hybrid engine alone at a million concurrent
    clients per workload.  A ``saturated`` phase repeats the exercise on
    the overloaded ``surge`` workload (timer-free policy, closed-form
    FIFO queueing reconstruction) with its own 10x gate -- discrete runs
    carry real queues there, so the baseline is slower per request but
    the fluid win is bounded by the in-window discrete share.  Writes
    ``BENCH_hybrid.json``; smoke mode runs one small head-to-head per
    phase with no timing claims.
    """
    from repro.core.hybrid import run_scenario_hybrid, scale_scenario, scale_workload
    from repro.faults import campaign

    seed, family, policy = 7, "magnitude", "fixed-timeout"

    def agrees(d, h) -> bool:
        if (d.n_requests, d.slo_violations, d.failed_requests) != (
            h.n_requests, h.slo_violations, h.failed_requests
        ):
            return False
        return all(
            abs(getattr(d, f) - getattr(h, f)) <= 1e-9
            for f in ("issued_work", "completed_work", "wasted_work")
        )

    def head_to_head(name: str, n_requests: int, repeats: int = 1,
                     run_policy: str = policy):
        workload = scale_workload(campaign.WORKLOADS[name], n_requests)
        scenario = scale_scenario(workload, family, seed, 0)
        discrete_s = hybrid_s = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            discrete = campaign.run_scenario(workload, scenario, run_policy)
            discrete_s = min(discrete_s, time.perf_counter() - start)
            start = time.perf_counter()
            hybrid = run_scenario_hybrid(workload, scenario, run_policy)
            hybrid_s = min(hybrid_s, time.perf_counter() - start)
        clean = not discrete.violations and not hybrid.violations
        return {
            "workload": name,
            "requests": n_requests,
            "policy": run_policy,
            "discrete_seconds": discrete_s,
            "hybrid_seconds": hybrid_s,
            "speedup": discrete_s / hybrid_s if hybrid_s else float("inf"),
            "outcomes_match": agrees(discrete, hybrid),
            "oracle_clean": clean,
        }

    if args.smoke:
        entry = head_to_head("dht", 2400)
        saturated_entry = head_to_head("surge", 960, run_policy="no-mitigation")
        for e in (entry, saturated_entry):
            if not (e["outcomes_match"] and e["oracle_clean"]):
                print("hybrid suite smoke FAILED", file=sys.stderr)
                return 1
        print("  hybrid suite: ok")
        return 0

    overlap = {}
    ok = True
    print("timing discrete vs hybrid (same scenario, same seed, "
          f"policy={policy!r}, best of {args.repeats}):")
    for name, n_requests in (("dht", 20_000), ("dht", 60_000),
                             ("raid10", 20_000)):
        entry = head_to_head(name, n_requests, repeats=args.repeats)
        ok = ok and entry["outcomes_match"] and entry["oracle_clean"]
        overlap[f"{name}_{n_requests}"] = entry
        print(f"  {name:8s} n={n_requests:<7d} discrete "
              f"{entry['discrete_seconds']:7.2f} s  hybrid "
              f"{entry['hybrid_seconds']:7.3f} s  "
              f"{entry['speedup']:6.1f}x  match={entry['outcomes_match']}")

    saturated = {}
    print("timing discrete vs hybrid on the saturated 'surge' workload "
          f"(policy='no-mitigation', best of {args.repeats}):")
    for name, n_requests in (("surge", 20_000), ("surge", 60_000)):
        entry = head_to_head(name, n_requests, repeats=args.repeats,
                             run_policy="no-mitigation")
        ok = ok and entry["outcomes_match"] and entry["oracle_clean"]
        saturated[f"{name}_{n_requests}"] = entry
        print(f"  {name:8s} n={n_requests:<7d} discrete "
              f"{entry['discrete_seconds']:7.2f} s  hybrid "
              f"{entry['hybrid_seconds']:7.3f} s  "
              f"{entry['speedup']:6.1f}x  match={entry['outcomes_match']}")

    scale = {}
    print("timing hybrid alone at a million clients:")
    for name in ("raid10", "dht", "surge"):
        run_policy = "no-mitigation" if name == "surge" else policy
        workload = scale_workload(campaign.WORKLOADS[name], 1_000_000)
        scenario = scale_scenario(workload, family, seed, 0)
        start = time.perf_counter()
        outcome = run_scenario_hybrid(workload, scenario, run_policy)
        seconds = time.perf_counter() - start
        clean = not outcome.violations
        ok = ok and clean
        scale[name] = {
            "clients": 1_000_000,
            "seconds": seconds,
            "discrete_requests": outcome.n_requests,
            "oracle_clean": clean,
        }
        print(f"  {name:8s} 10^6 clients in {seconds:7.3f} s "
              f"({outcome.n_requests} requests resolved, clean={clean})")

    min_speedup = min(e["speedup"] for e in overlap.values())
    meets_target = min_speedup >= 20.0
    saturated_min = min(e["speedup"] for e in saturated.values())
    saturated_meets = saturated_min >= 10.0
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "policy": policy,
        "scenario_family": family,
        "overlap": overlap,
        "saturated": saturated,
        "scale": scale,
        "min_speedup": min_speedup,
        "speedup_target": 20.0,
        "meets_target": meets_target,
        "saturated_min_speedup": saturated_min,
        "saturated_speedup_target": 10.0,
        "saturated_meets_target": saturated_meets,
    }
    out = args.out or "BENCH_hybrid.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"  worst-case speedup      {min_speedup:6.1f}x "
          f"(target 20x: {'met' if meets_target else 'MISSED'})")
    print(f"  saturated worst case    {saturated_min:6.1f}x "
          f"(target 10x: {'met' if saturated_meets else 'MISSED'})")
    if not ok:
        print("hybrid suite FAILED: outcome mismatch or oracle violation",
              file=sys.stderr)
        return 1
    return 0 if (meets_target and saturated_meets) else 1


def run_batch_suite(args) -> int:
    """Time e06's seed-batch path against its scalar per-seed path.

    The same multi-seed workload runs both ways cold in one process:
    scalar (one simulation per seed, the report's default path) and
    batched (every seed a structure-of-arrays lane of one
    ``SeedBatchRunner``).  The rendered tables must be byte-identical at
    every size -- the batch path is a pure wall-clock lever -- and the
    report-size row's speedup must clear 5x.  Writes ``BENCH_batch.json``;
    smoke mode checks equivalence on a small run with no timing claims.
    """
    from repro.experiments.e06_variance import run as scalar_run
    from repro.experiments.e06_variance import run_batch

    if args.smoke:
        kwargs = dict(n_runs=12, nblocks=8)
        if scalar_run(**kwargs).render() != run_batch(**kwargs).render():
            print("batch suite smoke FAILED: scalar/batch table mismatch",
                  file=sys.stderr)
            return 1
        print("  batch suite: ok")
        return 0

    rows = {}
    ok = True
    print("timing scalar vs seed-batch e06 (same seeds, cold, "
          f"best of {args.repeats}+):")
    for label, n_runs in (("report_n60", 60), ("scaled_n600", 600),
                          ("scaled_n2400", 2400)):
        # Small rows finish in ~10 ms, where scheduler noise swamps a
        # handful of repeats; scale the repeat count down-size so every
        # row gets comparable total timing volume.
        repeats = args.repeats * max(1, min(8, 2400 // n_runs))
        scalar_s = batch_s = float("inf")
        # Phase-grouped (all scalar repeats, then all batch repeats):
        # interleaving lets the 50x-larger scalar pass evict the batch
        # path's working set between every repeat, which biases best-of
        # against the smaller side.
        for _ in range(repeats):
            start = time.perf_counter()
            scalar_table = scalar_run(n_runs=n_runs)
            scalar_s = min(scalar_s, time.perf_counter() - start)
        for _ in range(repeats):
            start = time.perf_counter()
            batch_table = run_batch(n_runs=n_runs)
            batch_s = min(batch_s, time.perf_counter() - start)
        identical = scalar_table.render() == batch_table.render()
        ok = ok and identical
        rows[label] = {
            "n_runs": n_runs,
            "scalar_seconds": scalar_s,
            "batch_seconds": batch_s,
            "speedup": scalar_s / batch_s if batch_s else float("inf"),
            "table_identical": identical,
        }
        print(f"  n={n_runs:<5d} scalar {scalar_s * 1e3:8.2f} ms  batch "
              f"{batch_s * 1e3:8.2f} ms  {rows[label]['speedup']:6.2f}x  "
              f"identical={identical}")

    report_speedup = rows["report_n60"]["speedup"]
    meets_target = report_speedup >= 5.0
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "experiment": "e06",
        "rows": rows,
        "report_speedup": report_speedup,
        "speedup_target": 5.0,
        "meets_target": meets_target,
    }
    out = args.out or "BENCH_batch.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"  report-size speedup     {report_speedup:6.2f}x "
          f"(target 5x: {'met' if meets_target else 'MISSED'})")
    if not ok:
        print("batch suite FAILED: scalar/batch table mismatch",
              file=sys.stderr)
        return 1
    return 0 if meets_target else 1


def run_sweep_suite(args) -> int:
    """Time the generative scenario sweep and re-verify its determinism.

    Runs ``repro.scenario.run_sweep`` on both engines in one process:
    every generated scenario must come back oracle-clean, and a second
    sweep under the same seed must reproduce the sweep digest
    byte-identically.  Writes scenario-throughput numbers to
    ``BENCH_sweep.json``; smoke mode shrinks the count and skips the
    JSON.
    """
    from repro.scenario import run_sweep

    count = 10 if args.smoke else 100
    entries = {}
    ok = True
    for engine in ("discrete", "hybrid"):
        start = time.perf_counter()
        first = run_sweep(seed=7, count=count, engine=engine,
                          verify_determinism=False)
        elapsed = time.perf_counter() - start
        second = run_sweep(seed=7, count=count, engine=engine,
                           verify_determinism=False)
        identical = first.digest() == second.digest()
        clean = not first.violations
        ok = ok and identical and clean
        entries[engine] = {
            "scenarios": count,
            "seconds": elapsed,
            "scenarios_per_second": count / elapsed if elapsed else float("inf"),
            "sweep_sha256": first.digest(),
            "byte_identical": identical,
            "oracle_violations": len(first.violations),
            "hybrid_fallbacks": len(first.fallbacks),
        }
        print(f"  {engine:8s} {count} scenarios in {elapsed:.2f} s "
              f"({count / elapsed:.1f}/s), oracle clean={clean}, "
              f"rerun identical={identical}, "
              f"fallbacks={len(first.fallbacks)}")
    if not ok:
        print("sweep suite FAILED: oracle violation or digest drift",
              file=sys.stderr)
        return 1
    if args.smoke:
        print("  sweep suite: ok")
        return 0

    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": 7,
        "engines": entries,
    }
    out = args.out or "BENCH_sweep.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


#: The soak RSS child: records a soak to a trace with no windows
#: retained and reports its own peak RSS.  Run in a fresh subprocess per
#: horizon so ``ru_maxrss`` (a process-lifetime high-water mark) reflects
#: that horizon alone.
_SOAK_CHILD = """
import json, resource, sys, time
from repro.telemetry import record_soak
n_windows, n_requests, trace = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
start = time.perf_counter()
result = record_soak(trace, seed=7, n_windows=n_windows,
                     injectors_per_window=2, n_requests=n_requests,
                     engine="hybrid", retain_windows=False)
seconds = time.perf_counter() - start
import os
print(json.dumps({
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "windows": result.n_windows,
    "requests": result.requests,
    "horizon_s": result.horizon,
    "oracle_clean": result.ok,
    "seconds": seconds,
    "trace_bytes": os.path.getsize(trace),
}))
"""


def run_soak_suite(args) -> int:
    """Gate the soak campaign's O(1)-memory claim and verify its traces.

    Two fresh subprocesses record the same soak (hybrid engine, windows
    streamed to a trace, none retained) at a 10x horizon difference;
    each reports its own ``ru_maxrss``.  The large run's peak RSS must
    stay within 1.1x of the small run's -- a flat memory profile across
    a 10x virtual-horizon growth -- and the small trace must replay and
    verify byte-for-byte.  Writes ``BENCH_soak.json``; smoke mode does
    an in-process record/replay/verify round trip with no RSS claim.
    """
    import os
    import subprocess
    import tempfile

    from repro.telemetry import record_soak, replay_trace, verify_trace

    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-soak-smoke-") as tmp:
            trace = os.path.join(tmp, "soak.jsonl")
            result = record_soak(trace, seed=7, n_windows=3,
                                 injectors_per_window=1, n_requests=40,
                                 engine="hybrid", retain_windows=False)
            replay = replay_trace(trace)
            verify = verify_trace(trace)
            ok = (result.ok and replay.consistent and replay.read.clean_close
                  and len(replay.windows) == 3 and verify.ok)
            if not ok:
                print("soak suite smoke FAILED", file=sys.stderr)
                if not verify.ok:
                    print(verify.render(), file=sys.stderr)
                return 1
        print("  soak suite: ok")
        return 0

    n_requests = 2_000
    windows_small, windows_large = 6, 60
    env = dict(os.environ)
    env["PYTHONPATH"] = args.kernel_src + os.pathsep + env.get("PYTHONPATH", "")
    rows = {}
    print(f"soak RSS across a 10x horizon ({n_requests} clients/window, "
          "hybrid, windows streamed to trace, none retained):")
    with tempfile.TemporaryDirectory(prefix="repro-soak-bench-") as tmp:
        for label, n_windows in (("small", windows_small),
                                 ("large", windows_large)):
            trace = os.path.join(tmp, f"soak_{label}.jsonl")
            proc = subprocess.run(
                [sys.executable, "-c", _SOAK_CHILD, str(n_windows),
                 str(n_requests), trace],
                env=env, capture_output=True, text=True,
            )
            if proc.returncode != 0:
                print(f"soak child ({label}) failed:\n{proc.stderr}",
                      file=sys.stderr)
                return 1
            rows[label] = json.loads(proc.stdout.strip().splitlines()[-1])
            row = rows[label]
            print(f"  {label:6s} {row['windows']:3d} windows "
                  f"({row['horizon_s'] / 3600.0:6.1f}h virtual)  rss "
                  f"{row['maxrss_kb'] / 1024.0:7.1f} MiB  "
                  f"{row['seconds']:6.2f} s  trace "
                  f"{row['trace_bytes'] / 1024.0:8.1f} KiB  "
                  f"clean={row['oracle_clean']}")
        verify = verify_trace(os.path.join(tmp, "soak_small.jsonl"))
        print(f"  {verify.render()}")

    rss_ratio = rows["large"]["maxrss_kb"] / rows["small"]["maxrss_kb"]
    meets_target = rss_ratio <= 1.1
    clean = rows["small"]["oracle_clean"] and rows["large"]["oracle_clean"]
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_requests": n_requests,
        "rows": rows,
        "rss_ratio": rss_ratio,
        "rss_target": 1.1,
        "meets_target": meets_target,
        "verified": verify.ok,
        "oracle_clean": clean,
    }
    out = args.out or "BENCH_soak.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"  rss ratio (10x horizon) {rss_ratio:6.3f}x "
          f"(target <= 1.1x: {'met' if meets_target else 'MISSED'})")
    if not (clean and verify.ok):
        print("soak suite FAILED: oracle violation or verify mismatch",
              file=sys.stderr)
        return 1
    return 0 if meets_target else 1


def run_models_suite(args) -> int:
    """Time the component-model hot paths against their retained
    reference implementations and write ``BENCH_models.json``.

    Every workload is run both ways in one process; the checksums must
    be *identical* (the analytic paths are bit-exact, not approximate),
    so any drift fails the run before a speedup is reported.
    """
    from models_workloads import MACRO_EXPERIMENTS, MODEL_WORKLOADS, experiment_digest

    repeats = 1 if args.smoke else args.repeats
    workloads = dict(MODEL_WORKLOADS)
    if args.smoke:
        # Reduced sizes: enough to exercise every code path, not to time.
        workloads = {
            "zoned_stream": (MODEL_WORKLOADS["zoned_stream"][0],
                             {"nblocks": 4_000, "n_zones": 16}),
            "random_io_remaps": (MODEL_WORKLOADS["random_io_remaps"][0],
                                 {"n_requests": 400}),
            "metric_raid_run": (MODEL_WORKLOADS["metric_raid_run"][0],
                                {"n_requests": 400, "n_slos": 10}),
        }

    entries = {}
    ok = True
    print(f"timing {len(workloads)} model workloads + "
          f"{len(MACRO_EXPERIMENTS)} experiment macros "
          f"(best of {repeats}, reference vs analytic):")
    for name, (fn, kwargs) in workloads.items():
        ref = time_workload(fn, {**kwargs, "impl": "reference"}, repeats)
        opt = time_workload(fn, {**kwargs, "impl": "analytic"}, repeats)
        identical = ref["checksum"] == opt["checksum"]
        ok = ok and identical
        entries[name] = {
            "reference_seconds": ref["seconds"],
            "analytic_seconds": opt["seconds"],
            "speedup": ref["seconds"] / opt["seconds"] if opt["seconds"] else float("inf"),
            "checksum": repr(opt["checksum"]),
            "checksum_identical": identical,
        }
        print(f"  {name:20s} {entries[name]['speedup']:6.2f}x  "
              f"identical={identical}")

    macro_kwargs = {"e01": {"n_blocks": 60}, "e02": {"n_blocks": 60},
                    "e03": {"nblocks": 1200}} if args.smoke else {}
    for exp in MACRO_EXPERIMENTS:
        kwargs = macro_kwargs.get(exp, {})
        ref = time_workload(experiment_digest, {"experiment": exp, "impl": "reference", **kwargs}, repeats)
        opt = time_workload(experiment_digest, {"experiment": exp, "impl": "analytic", **kwargs}, repeats)
        identical = ref["checksum"] == opt["checksum"]
        ok = ok and identical
        entries[exp] = {
            "reference_seconds": ref["seconds"],
            "analytic_seconds": opt["seconds"],
            "speedup": ref["seconds"] / opt["seconds"] if opt["seconds"] else float("inf"),
            "checksum": opt["checksum"],
            "checksum_identical": identical,
        }
        print(f"  {exp:20s} {entries[exp]['speedup']:6.2f}x  identical={identical}")

    if not ok:
        print("models suite FAILED: checksum drift between reference and "
              "analytic implementations", file=sys.stderr)
        return 1
    if args.smoke:
        print("  models suite: ok")
        return 0

    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "workloads": entries,
    }
    out = args.out or "BENCH_models.json"
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def run_engine_suite(args) -> int:
    """Time the kernel microbenchmarks (the default suite).

    With ``--save`` the raw timings are written as a baseline; with
    ``--baseline`` they are compared against one and the summary goes to
    ``BENCH_engine.json``.  Under ``--suite all``, when neither is given,
    the ``baseline_seconds`` stored in an existing ``BENCH_engine.json``
    are reused so the comparison still has a denominator.
    """
    from engine_workloads import WORKLOADS

    if args.smoke:
        for name, (fn, kwargs) in WORKLOADS.items():
            fn(**kwargs)
            print(f"  {name}: ok")
        return 0

    print(f"timing {len(WORKLOADS)} workloads (best of {args.repeats}):")
    results = run_all(WORKLOADS, args.repeats)
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "results": results,
    }

    if args.save:
        Path(args.save).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.save}")
        return 0

    baseline_results = None
    if args.baseline:
        baseline_results = json.loads(Path(args.baseline).read_text())["results"]
    elif args.suite == "all":
        prior = Path(args.out or "BENCH_engine.json")
        if prior.is_file():
            stored = json.loads(prior.read_text()).get("workloads", {})
            baseline_results = {
                name: {"seconds": entry["baseline_seconds"]}
                for name, entry in stored.items()
                if "baseline_seconds" in entry
            }
            print(f"  (baseline seconds reused from {prior})")

    if baseline_results is None:
        return 0

    report = {
        "python": payload["python"],
        "platform": payload["platform"],
        "repeats": args.repeats,
        "workloads": {},
    }
    for name, after in results.items():
        base = baseline_results.get(name)
        entry = {"after_seconds": after["seconds"], "checksum": after["checksum"]}
        if base is not None:
            entry["baseline_seconds"] = base["seconds"]
            entry["speedup"] = base["seconds"] / after["seconds"] if after["seconds"] else float("inf")
        report["workloads"][name] = entry
    out = args.out or "BENCH_engine.json"
    Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for name, entry in report["workloads"].items():
        if "speedup" in entry:
            print(f"  {name:20s} {entry['speedup']:6.2f}x")
    return 0


SUITES = {
    "engine": run_engine_suite,
    "report": run_report_suite,
    "models": run_models_suite,
    "campaign": run_campaign_suite,
    "hybrid": run_hybrid_suite,
    "batch": run_batch_suite,
    "sweep": run_sweep_suite,
    "soak": run_soak_suite,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite",
                        choices=tuple(SUITES) + ("all",),
                        default="engine",
                        help="engine microbenchmarks (default), full-report "
                             "regeneration timings, component-model "
                             "reference-vs-analytic timings, fault-campaign "
                             "throughput + determinism, hybrid-engine "
                             "discrete-vs-fluid timings, seed-batch "
                             "scalar-vs-batched timings, or all of them")
    parser.add_argument("--save", metavar="PATH", help="write raw timings to PATH")
    parser.add_argument("--baseline", metavar="PATH", help="baseline timings to compare against")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="report path (default BENCH_engine.json / BENCH_report.json)")
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing repeats")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the report suite's parallel passes")
    parser.add_argument("--smoke", action="store_true",
                        help="run each workload once with no timing output (CI rot check)")
    parser.add_argument("--kernel-src", metavar="PATH", default=str(REPO_ROOT / "src"),
                        help="src/ tree whose kernel to import (e.g. a `git worktree` "
                             "of the pre-optimisation revision, to record a baseline)")
    args = parser.parse_args(argv)

    if not Path(args.kernel_src, "repro").is_dir():
        parser.error(f"--kernel-src {args.kernel_src}: no repro package found there")
    if args.baseline and not Path(args.baseline).is_file():
        parser.error(f"--baseline {args.baseline}: file not found")
    if args.suite == "all" and args.out:
        parser.error("--out is per-suite; each suite writes its own "
                     "BENCH_*.json under --suite all")

    for entry in (args.kernel_src, str(REPO_ROOT / "benchmarks")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    if args.suite == "all":
        rc = 0
        for name, suite_fn in SUITES.items():
            print(f"== {name} suite ==")
            rc = max(rc, suite_fn(args))
        return rc

    return SUITES[args.suite](args)


if __name__ == "__main__":
    raise SystemExit(main())
