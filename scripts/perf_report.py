#!/usr/bin/env python
"""Time the kernel microbenchmarks and emit a baseline-vs-after report.

Usage (from the repo root)::

    # Record a baseline with the current kernel:
    PYTHONPATH=src python scripts/perf_report.py --save baseline.json

    # Or record a baseline against an older kernel revision:
    git worktree add /tmp/oldrepo <rev>
    python scripts/perf_report.py --kernel-src /tmp/oldrepo/src --save baseline.json

    # After optimising, compare and write the summary:
    PYTHONPATH=src python scripts/perf_report.py \
        --baseline baseline.json --out BENCH_engine.json

    # Smoke mode (CI): run every workload once, no timing claims:
    PYTHONPATH=src python scripts/perf_report.py --smoke

Each workload is timed as best-of-``--repeats`` wall clock, which is the
standard way to reduce scheduler noise for sub-second microbenchmarks.
The emitted JSON records per-workload baseline/after seconds and the
speedup ratio.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def time_workload(fn, kwargs, repeats: int) -> dict:
    """Best-of-N wall-clock seconds plus the workload's checksum."""
    best = float("inf")
    checksum = None
    for _ in range(repeats):
        start = time.perf_counter()
        checksum = fn(**kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {"seconds": best, "checksum": checksum}


def run_all(workloads: dict, repeats: int) -> dict:
    results = {}
    for name, (fn, kwargs) in workloads.items():
        results[name] = time_workload(fn, kwargs, repeats)
        print(f"  {name:20s} {results[name]['seconds'] * 1e3:9.2f} ms")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--save", metavar="PATH", help="write raw timings to PATH")
    parser.add_argument("--baseline", metavar="PATH", help="baseline timings to compare against")
    parser.add_argument("--out", metavar="PATH", default="BENCH_engine.json",
                        help="comparison report path (with --baseline)")
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing repeats")
    parser.add_argument("--smoke", action="store_true",
                        help="run each workload once with no timing output (CI rot check)")
    parser.add_argument("--kernel-src", metavar="PATH", default=str(REPO_ROOT / "src"),
                        help="src/ tree whose kernel to import (e.g. a `git worktree` "
                             "of the pre-optimisation revision, to record a baseline)")
    args = parser.parse_args(argv)

    if not Path(args.kernel_src, "repro").is_dir():
        parser.error(f"--kernel-src {args.kernel_src}: no repro package found there")
    if args.baseline and not Path(args.baseline).is_file():
        parser.error(f"--baseline {args.baseline}: file not found")

    for entry in (args.kernel_src, str(REPO_ROOT / "benchmarks")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from engine_workloads import WORKLOADS

    if args.smoke:
        for name, (fn, kwargs) in WORKLOADS.items():
            fn(**kwargs)
            print(f"  {name}: ok")
        return 0

    print(f"timing {len(WORKLOADS)} workloads (best of {args.repeats}):")
    results = run_all(WORKLOADS, args.repeats)
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "results": results,
    }

    if args.save:
        Path(args.save).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.save}")
        return 0

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        report = {
            "python": payload["python"],
            "platform": payload["platform"],
            "repeats": args.repeats,
            "workloads": {},
        }
        for name, after in results.items():
            base = baseline["results"].get(name)
            entry = {"after_seconds": after["seconds"], "checksum": after["checksum"]}
            if base is not None:
                entry["baseline_seconds"] = base["seconds"]
                entry["speedup"] = base["seconds"] / after["seconds"] if after["seconds"] else float("inf")
            report["workloads"][name] = entry
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
        for name, entry in report["workloads"].items():
            if "speedup" in entry:
                print(f"  {name:20s} {entry['speedup']:6.2f}x")
        return 0

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
