#!/usr/bin/env python
"""Spec lint: every bundled scenario/family spec must validate and compile.

CI's spec-lint step runs this after any change: each file under
``src/repro/scenarios/`` is parsed by the strict loader, compiled to
its runtime form (workload wiring or family generator), checked for
name/stem agreement, and -- for scenario specs -- probed for engine
eligibility so a spec that silently stopped compiling can never ship.
The planted-invalid fixtures under ``tests/scenario/fixtures/`` must
all be *rejected* with a ``SpecError`` naming a field, proving the
validator still has teeth.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/check_specs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenario import (  # noqa: E402
    FamilySpec,
    SpecError,
    compile_family,
    compile_spec,
    load_spec,
    parse_spec,
)
from repro.scenario.bundle import spec_paths  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "scenario" / "fixtures"


def check_bundled() -> int:
    failures = 0
    paths = spec_paths()
    if not paths:
        print("no bundled spec files found", file=sys.stderr)
        return 1
    for path in paths:
        try:
            spec = load_spec(path)
            if spec.name != path.stem:
                raise SpecError(
                    f"name {spec.name!r} does not match file stem {path.stem!r}"
                )
            if isinstance(spec, FamilySpec):
                compile_family(spec)
                detail = f"family ({spec.fault} on a drawn {spec.target})"
            else:
                compiled = compile_spec(spec)
                engines = [
                    name for name, (ok, _) in compiled.eligibility().items()
                    if ok
                ]
                detail = (
                    f"scenario ({spec.groups.count}x{spec.groups.size} "
                    f"{spec.groups.substrate}; engines: {', '.join(engines)})"
                )
            # Round-trip: the canonical serialization must re-parse to
            # the same spec, and the digest must be serialization-stable.
            if parse_spec(spec.to_dict()) != spec:
                raise SpecError("to_dict/parse round-trip changed the spec")
            print(f"  ok       {path.name:18s} {detail}")
        except SpecError as exc:
            failures += 1
            print(f"  INVALID  {path.name}: {exc}", file=sys.stderr)
    return failures


def check_fixtures() -> int:
    failures = 0
    fixtures = sorted(FIXTURE_DIR.glob("invalid_*.json"))
    if not fixtures:
        print(f"no planted-invalid fixtures under {FIXTURE_DIR}",
              file=sys.stderr)
        return 1
    for path in fixtures:
        try:
            load_spec(path)
        except SpecError as exc:
            print(f"  rejected {path.name:34s} ({exc})")
        else:
            failures += 1
            print(f"  ACCEPTED {path.name}: the validator lost its teeth",
                  file=sys.stderr)
    return failures


def main() -> int:
    print("bundled specs:")
    failures = check_bundled()
    print("planted-invalid fixtures:")
    failures += check_fixtures()
    if failures:
        print(f"spec lint FAILED ({failures} problems)", file=sys.stderr)
        return 1
    print("spec lint: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
