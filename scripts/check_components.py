#!/usr/bin/env python
"""Lint: every degradable component class must attach a PerformanceSpec.

The component protocol (DESIGN.md, "Component protocol") requires every
registered component to carry a spec so detectors can be attached purely
by name.  The easy way to break that silently is to subclass
``DegradableMixin`` (or ``CompositeComponent``), write an ``__init__``,
and forget the spec: the class still works until someone calls
``System.watch(name)`` on it and gets a ``ValueError`` at runtime.

This checker walks the source tree with :mod:`ast` (no imports, no side
effects) and flags any class that

* transitively subclasses ``DegradableMixin`` or ``CompositeComponent``
  (resolved by name across the scanned files), and
* defines its own ``__init__``, and
* neither attaches a spec (``self.attach_spec(...)`` /
  ``self._init_component(...)``, whose ``spec`` argument defaults one)
  nor delegates to a parent initializer (``super().__init__(...)`` or
  ``Parent.__init__(self, ...)``) that is itself checked.

Classes that do not define ``__init__`` inherit a checked one and pass.

Usage (from the repo root)::

    python scripts/check_components.py            # lint src/repro
    python scripts/check_components.py path [...] # lint specific trees

Exit status 0 when clean, 1 with one line per offender otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

#: Roots of the degradable-component class hierarchy.  Subclassing any of
#: these (directly or transitively) puts a class under the spec rule.
COMPONENT_ROOTS = ("DegradableMixin", "CompositeComponent")

#: Calls that attach a spec inside ``__init__``.
SPEC_ATTACHING_CALLS = ("attach_spec", "_init_component")


def _base_name(node: ast.expr) -> str:
    """Last name segment of a class expression (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _bases_of(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _collect_classes(paths: Iterable[Path]) -> List[Tuple[Path, ast.ClassDef]]:
    """Every class definition in every ``.py`` file under ``paths``."""
    out: List[Tuple[Path, ast.ClassDef]] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    out.append((path, node))
    return out


def _component_classes(
    classes: List[Tuple[Path, ast.ClassDef]]
) -> Set[str]:
    """Names of classes transitively rooted at :data:`COMPONENT_ROOTS`.

    Resolution is by simple name: good enough for one source tree where
    class names are unique, and keeps the checker import-free.
    """
    bases: Dict[str, List[str]] = {
        cls.name: _bases_of(cls) for _, cls in classes
    }
    component: Set[str] = set(COMPONENT_ROOTS)
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name in component:
                continue
            if any(b in component for b in base_names):
                component.add(name)
                changed = True
    return component - set(COMPONENT_ROOTS)


def _init_method(cls: ast.ClassDef) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "__init__":
                return node
    return None


def _attaches_spec(init: ast.FunctionDef, parent_names: List[str]) -> bool:
    """True if ``__init__`` attaches a spec or delegates to a parent."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.attach_spec(...) / self._init_component(...)
            if func.attr in SPEC_ATTACHING_CALLS:
                return True
            # super().__init__(...) delegates to a checked parent.
            if func.attr == "__init__":
                inner = func.value
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "super"
                ):
                    return True
                # Parent.__init__(self, ...) -- explicit delegation.
                if _base_name(inner) in parent_names:
                    return True
    return False


def check_paths(paths: Iterable[Path]) -> List[str]:
    """Lint ``paths``; returns one message per offending class."""
    classes = _collect_classes(paths)
    component = _component_classes(classes)
    problems: List[str] = []
    for path, cls in classes:
        if cls.name not in component:
            continue
        init = _init_method(cls)
        if init is None:
            continue  # inherits a checked initializer
        parents = _bases_of(cls)
        # Delegation targets include any ancestor reachable by name.
        if not _attaches_spec(init, parents + list(COMPONENT_ROOTS)):
            problems.append(
                f"{path}:{cls.lineno}: {cls.name} subclasses a degradable "
                "component but its __init__ never attaches a "
                "PerformanceSpec (call attach_spec/_init_component or "
                "delegate to a parent __init__)"
            )
    return problems


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = Path(__file__).resolve().parent.parent
    paths = [Path(p) for p in argv] or [repo_root / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    problems = check_paths(paths)
    for problem in problems:
        print(problem)
    if problems:
        return 1
    classes = _collect_classes(paths)
    n = sum(1 for _, c in classes if c.name in _component_classes(classes))
    print(f"OK: {n} component classes attach their spec")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
